// The event-driven federation engine: buffered / async execution modes.
//
// Covers: mode validation, fixed-seed determinism across thread counts
// (the event queue orders by (time, sequence), never by host scheduling),
// staleness accounting and weighting, buffered flush sizes, async
// progress on the quadratic problem, and the starvation path where every
// completion event misses the deadline (event-queue drain: NaN train_loss
// records, θ untouched, run terminates).

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <memory>
#include <vector>

#include "comm/codec.h"
#include "core/fedadmm.h"
#include "fl/quadratic_problem.h"
#include "fl/selection.h"
#include "fl/simulation.h"
#include "sys/system_model.h"

namespace fedadmm {
namespace {

QuadraticSpec Spec(int clients = 12, int dim = 7) {
  QuadraticSpec spec;
  spec.num_clients = clients;
  spec.dim = dim;
  spec.heterogeneity = 1.2;
  spec.seed = 91;
  return spec;
}

FedAdmmOptions Options() {
  FedAdmmOptions options;
  options.local.learning_rate = 0.05f;
  options.local.batch_size = 4;
  options.local.max_epochs = 3;
  options.local.variable_epochs = true;
  options.rho = StepSchedule(0.1);
  // η = |S_t|/m, the theoretically analyzed server step. Essential in the
  // event modes: a singleton async batch at η = 1 overshoots by m×.
  options.eta_active_fraction = true;
  return options;
}

SystemModel CellularModel(int clients,
                          const std::string& policy = "wait-for-all",
                          double deadline = -1.0) {
  FleetModel fleet = FleetModel::FromPreset("cellular", clients, 3)
                         .ValueOrDie();
  return SystemModel(std::move(fleet),
                     MakeStragglerPolicy(policy, deadline).ValueOrDie());
}

struct ModeRun {
  History history;
  std::vector<float> theta;
};

ModeRun RunMode(ExecutionMode mode, const SystemModel* model, int threads,
                int rounds, uint64_t seed = 7, int buffer_size = 0,
                StalenessWeightFn weight = nullptr,
                UpdateCodec* uplink = nullptr) {
  QuadraticProblem problem(Spec());
  FedAdmm algo(Options());
  UniformFractionSelector selector(12, 0.5);
  SimulationConfig config;
  config.max_rounds = rounds;
  config.seed = seed;
  config.num_threads = threads;
  config.mode = mode;
  config.buffer_size = buffer_size;
  config.staleness_weight = std::move(weight);
  Simulation sim(&problem, &algo, &selector, config);
  if (model) sim.set_system_model(model);
  if (uplink) sim.set_uplink_codec(uplink);
  ModeRun run;
  run.history = std::move(sim.Run()).ValueOrDie();
  run.theta = sim.theta();
  return run;
}

// NaN-aware equality for skipped-eval sentinels.
bool SameMetric(double a, double b) {
  return (std::isnan(a) && std::isnan(b)) || a == b;
}

void ExpectIdenticalRuns(const ModeRun& a, const ModeRun& b) {
  EXPECT_EQ(a.theta, b.theta);
  ASSERT_EQ(a.history.size(), b.history.size());
  for (int i = 0; i < a.history.size(); ++i) {
    const RoundRecord& ra = a.history.records()[static_cast<size_t>(i)];
    const RoundRecord& rb = b.history.records()[static_cast<size_t>(i)];
    EXPECT_EQ(ra.num_selected, rb.num_selected) << i;
    EXPECT_TRUE(SameMetric(ra.train_loss, rb.train_loss)) << i;
    EXPECT_TRUE(SameMetric(ra.test_accuracy, rb.test_accuracy)) << i;
    EXPECT_EQ(ra.upload_bytes, rb.upload_bytes) << i;
    EXPECT_EQ(ra.download_bytes, rb.download_bytes) << i;
    EXPECT_EQ(ra.sim_seconds, rb.sim_seconds) << i;
    EXPECT_EQ(ra.num_dropped, rb.num_dropped) << i;
    EXPECT_TRUE(SameMetric(ra.staleness_mean, rb.staleness_mean)) << i;
    EXPECT_EQ(ra.staleness_max, rb.staleness_max) << i;
  }
}

TEST(ExecutionModeTest, ParseAndNameRoundTrip) {
  for (ExecutionMode mode : {ExecutionMode::kSync, ExecutionMode::kBuffered,
                             ExecutionMode::kAsync}) {
    auto parsed = ParseExecutionMode(ExecutionModeName(mode));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(parsed.ValueOrDie(), mode);
  }
  EXPECT_FALSE(ParseExecutionMode("turbo").ok());
}

TEST(ExecutionModeTest, EventModesRequireSystemModel) {
  QuadraticProblem problem(Spec());
  FedAdmm algo(Options());
  UniformFractionSelector selector(12, 0.5);
  SimulationConfig config;
  config.max_rounds = 3;
  config.mode = ExecutionMode::kAsync;
  Simulation sim(&problem, &algo, &selector, config);
  const auto result = sim.Run();
  ASSERT_FALSE(result.ok());
}

TEST(ExecutionModeTest, AsyncIsDeterministicAcrossThreadCounts) {
  const SystemModel model = CellularModel(12);
  const ModeRun serial = RunMode(ExecutionMode::kAsync, &model, 1, 24);
  ExpectIdenticalRuns(serial, RunMode(ExecutionMode::kAsync, &model, 3, 24));
  ExpectIdenticalRuns(serial, RunMode(ExecutionMode::kAsync, &model, 8, 24));
}

TEST(ExecutionModeTest, BufferedIsDeterministicAcrossThreadCounts) {
  const SystemModel model = CellularModel(12);
  const ModeRun serial =
      RunMode(ExecutionMode::kBuffered, &model, 1, 12, 7, 3);
  ExpectIdenticalRuns(serial,
                      RunMode(ExecutionMode::kBuffered, &model, 5, 12, 7, 3));
}

TEST(ExecutionModeTest, AsyncWithStatefulCodecIsDeterministic) {
  // Error-feedback residuals are keyed by wire stream and mutated in pop
  // order; thread count must still not matter.
  const SystemModel model = CellularModel(12);
  auto codec_a = MakeUpdateCodec("ef:topk10").ValueOrDie();
  auto codec_b = MakeUpdateCodec("ef:topk10").ValueOrDie();
  const ModeRun a = RunMode(ExecutionMode::kAsync, &model, 1, 16, 7, 0,
                            nullptr, codec_a.get());
  const ModeRun b = RunMode(ExecutionMode::kAsync, &model, 4, 16, 7, 0,
                            nullptr, codec_b.get());
  ExpectIdenticalRuns(a, b);
}

TEST(ExecutionModeTest, DifferentSeedsDiverge) {
  const SystemModel model = CellularModel(12);
  EXPECT_NE(RunMode(ExecutionMode::kAsync, &model, 1, 16, 7).theta,
            RunMode(ExecutionMode::kAsync, &model, 1, 16, 8).theta);
}

TEST(ExecutionModeTest, AsyncRecordsHavePerEventShape) {
  const SystemModel model = CellularModel(12);
  const ModeRun run = RunMode(ExecutionMode::kAsync, &model, 2, 24);
  ASSERT_EQ(run.history.size(), 24);
  double last_time = 0.0;
  bool saw_stale = false;
  for (const RoundRecord& r : run.history.records()) {
    // One admitted arrival per aggregation record.
    EXPECT_EQ(r.num_selected, 1);
    // Per-event sim time is monotone non-decreasing (event-queue order).
    EXPECT_GE(r.sim_seconds, last_time);
    last_time = r.sim_seconds;
    if (r.staleness_max > 0) saw_stale = true;
    EXPECT_GE(r.staleness_mean, 0.0);
  }
  // With ~6 clients in flight, arrivals after the first overlap at least
  // one server update: staleness must actually show up.
  EXPECT_TRUE(saw_stale);
}

TEST(ExecutionModeTest, BufferedFlushesKUpdatesPerRecord) {
  const SystemModel model = CellularModel(12);
  const ModeRun run =
      RunMode(ExecutionMode::kBuffered, &model, 2, 10, 7, /*buffer=*/3);
  ASSERT_EQ(run.history.size(), 10);
  for (const RoundRecord& r : run.history.records()) {
    EXPECT_EQ(r.num_selected, 3) << "round " << r.round;
  }
}

TEST(ExecutionModeTest, AsyncMakesProgressOnQuadratic) {
  const SystemModel model = CellularModel(12);
  const ModeRun run = RunMode(ExecutionMode::kAsync, &model, 2, 120);
  // accuracy = 1/(1 + ||θ − θ*||) starts near 0; async FedADMM must climb.
  EXPECT_GT(run.history.BestAccuracy(), 0.6);
}

TEST(ExecutionModeTest, StalenessWeightChangesTrajectory) {
  const SystemModel model = CellularModel(12);
  const ModeRun constant = RunMode(ExecutionMode::kAsync, &model, 1, 24);
  const ModeRun damped = RunMode(ExecutionMode::kAsync, &model, 1, 24, 7, 0,
                                 PolynomialStalenessWeight(4.0));
  // Heavy polynomial damping nearly zeroes stale arrivals; θ must move
  // differently — but the event schedule (pure timing) is unchanged.
  EXPECT_NE(constant.theta, damped.theta);
  ASSERT_EQ(constant.history.size(), damped.history.size());
  for (int i = 0; i < constant.history.size(); ++i) {
    EXPECT_EQ(constant.history.records()[static_cast<size_t>(i)].sim_seconds,
              damped.history.records()[static_cast<size_t>(i)].sim_seconds);
  }
}

TEST(ExecutionModeTest, MakeStalenessWeightParsesSpecs) {
  ASSERT_TRUE(MakeStalenessWeight("constant").ok());
  auto poly = MakeStalenessWeight("poly:0.5");
  ASSERT_TRUE(poly.ok());
  const StalenessWeightFn w = std::move(poly).ValueOrDie();
  EXPECT_DOUBLE_EQ(w(0), 1.0);
  EXPECT_DOUBLE_EQ(w(3), std::pow(4.0, -0.5));
  EXPECT_FALSE(MakeStalenessWeight("poly:").ok());
  EXPECT_FALSE(MakeStalenessWeight("poly:-1").ok());
  EXPECT_FALSE(MakeStalenessWeight("linear").ok());
}

TEST(ExecutionModeTest, SyncModeIgnoresBufferAndWeightKnobs) {
  // A sync run with event-mode knobs set must be bitwise identical to a
  // plain sync run: the knobs are dead in lockstep mode.
  const SystemModel model = CellularModel(12, "deadline-drop", 2.0);
  const ModeRun plain = RunMode(ExecutionMode::kSync, &model, 3, 8);
  const ModeRun knobs = RunMode(ExecutionMode::kSync, &model, 3, 8, 7,
                                /*buffer=*/4, PolynomialStalenessWeight(1.0));
  ExpectIdenticalRuns(plain, knobs);
}

}  // namespace
}  // namespace fedadmm
