// Regression for the downlink over-billing bug: Simulation used to bill
// `download_bytes` for every selected client even when a client was
// dropped under `deadline-drop` before its broadcast download completed.
// The fleet can only be billed for bytes it actually received: dropped
// clients pay the time-proportional fraction of the broadcast that was on
// the wire by the cut-off.

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "fl/algorithms/fedsgd.h"
#include "fl/quadratic_problem.h"
#include "fl/selection.h"
#include "fl/simulation.h"
#include "sys/system_model.h"

namespace fedadmm {
namespace {

QuadraticSpec Spec() {
  QuadraticSpec spec;
  spec.num_clients = 2;
  spec.dim = 10;
  spec.seed = 5;
  return spec;
}

ClientSystemProfile Profile(double steps_per_second, double up_bps,
                            double down_bps) {
  ClientSystemProfile p;
  p.device.steps_per_second = steps_per_second;
  p.network.upload_bytes_per_second = up_bps;
  p.network.download_bytes_per_second = down_bps;
  p.network.latency_seconds = 0.0;
  return p;
}

// FedSGD pins the workload: exactly one "step" and a dim-sized payload per
// client per round, so timings are closed-form.
History RunTwoClientFleet(const SystemModel& model) {
  QuadraticProblem problem(Spec());
  FedSgd algo(0.05f);
  UniformFractionSelector selector(2, 1.0);  // both clients every round
  SimulationConfig config;
  config.max_rounds = 3;
  config.seed = 11;
  Simulation sim(&problem, &algo, &selector, config);
  sim.set_system_model(&model);
  return std::move(sim.Run()).ValueOrDie();
}

TEST(DownloadBillingTest, DropBeforeDownloadCompletesBillsReceivedFraction) {
  const int64_t payload = 10 * static_cast<int64_t>(sizeof(float));  // 40 B
  // Client 0: download 1 s, compute 1 ms, upload 1 s — total ~2.001 s.
  // Client 1: download alone takes 10 s.
  std::vector<ClientSystemProfile> profiles = {
      Profile(1000.0, static_cast<double>(payload),
              static_cast<double>(payload)),
      Profile(1000.0, static_cast<double>(payload),
              static_cast<double>(payload) / 10.0)};
  const SystemModel model(
      FleetModel(std::move(profiles)),
      MakeStragglerPolicy("deadline-drop", 5.0).ValueOrDie());

  const History history = RunTwoClientFleet(model);
  for (const RoundRecord& r : history.records()) {
    ASSERT_EQ(r.num_selected, 2);
    EXPECT_EQ(r.num_dropped, 1) << "round " << r.round;
    // Client 0 pays the full broadcast; client 1 was cut off 5 s into a
    // 10 s download — half the bytes reached it.
    const int64_t expected = payload + std::llround(0.5 * payload);
    EXPECT_EQ(r.download_bytes, expected) << "round " << r.round;
    EXPECT_EQ(r.download_bytes_raw, expected) << "round " << r.round;
    // Regression: the old accounting billed num_selected * payload.
    EXPECT_LT(r.download_bytes, r.num_selected * payload);
    // Only the admitted client's upload is billed.
    EXPECT_EQ(r.upload_bytes, payload);
  }
}

TEST(DownloadBillingTest, DropAfterDownloadStillBillsFullBroadcast) {
  const int64_t payload = 10 * static_cast<int64_t>(sizeof(float));
  // Client 1 downloads fast (0.1 s) but computes for 100 s: dropped, yet
  // it received the whole broadcast and must pay for it.
  std::vector<ClientSystemProfile> profiles = {
      Profile(1000.0, static_cast<double>(payload),
              static_cast<double>(payload)),
      Profile(0.01, static_cast<double>(payload),
              static_cast<double>(payload) * 10.0)};
  const SystemModel model(
      FleetModel(std::move(profiles)),
      MakeStragglerPolicy("deadline-drop", 5.0).ValueOrDie());

  const History history = RunTwoClientFleet(model);
  for (const RoundRecord& r : history.records()) {
    EXPECT_EQ(r.num_dropped, 1) << "round " << r.round;
    EXPECT_EQ(r.download_bytes, 2 * payload) << "round " << r.round;
  }
}

TEST(DownloadBillingTest, WaitForAllBillingIsUnchanged) {
  const int64_t payload = 10 * static_cast<int64_t>(sizeof(float));
  std::vector<ClientSystemProfile> profiles = {
      Profile(1000.0, static_cast<double>(payload),
              static_cast<double>(payload)),
      Profile(1000.0, static_cast<double>(payload),
              static_cast<double>(payload) / 10.0)};
  const SystemModel model(
      FleetModel(std::move(profiles)),
      MakeStragglerPolicy("wait-for-all", -1.0).ValueOrDie());

  const History history = RunTwoClientFleet(model);
  for (const RoundRecord& r : history.records()) {
    EXPECT_EQ(r.num_dropped, 0);
    EXPECT_EQ(r.download_bytes, r.num_selected * payload);
  }
}

}  // namespace
}  // namespace fedadmm
