#include "fl/algorithms/fedpd.h"

#include <gtest/gtest.h>

#include "fl/quadratic_problem.h"
#include "fl/selection.h"
#include "fl/simulation.h"

namespace fedadmm {
namespace {

QuadraticSpec Spec() {
  QuadraticSpec spec;
  spec.num_clients = 5;
  spec.dim = 6;
  spec.heterogeneity = 1.0;
  spec.seed = 41;
  return spec;
}

LocalTrainSpec Local() {
  LocalTrainSpec local;
  local.learning_rate = 0.05f;
  local.batch_size = 0;
  local.max_epochs = 5;
  local.variable_epochs = false;
  return local;
}

TEST(FedPdTest, CommunicatesOnlyWithProbabilityP) {
  QuadraticProblem problem(Spec());
  FedPd algo(Local(), /*rho=*/1.0f, /*comm_probability=*/0.3, /*seed=*/7);
  FullParticipationSelector selector(problem.num_clients());
  SimulationConfig config;
  config.max_rounds = 120;
  config.seed = 2;
  config.num_threads = 2;
  Simulation sim(&problem, &algo, &selector, config);
  auto history = sim.Run();
  ASSERT_TRUE(history.ok());
  // Roughly p*T aggregation rounds (the paper's point: global update
  // frequency is throttled by p).
  EXPECT_GT(algo.communication_rounds(), 15);
  EXPECT_LT(algo.communication_rounds(), 60);
}

TEST(FedPdTest, NonCommunicationRoundsUploadNothing) {
  QuadraticProblem problem(Spec());
  FedPd algo(Local(), 1.0f, /*comm_probability=*/0.0, 7);
  FullParticipationSelector selector(problem.num_clients());
  SimulationConfig config;
  config.max_rounds = 5;
  config.seed = 3;
  Simulation sim(&problem, &algo, &selector, config);
  auto history = sim.Run();
  ASSERT_TRUE(history.ok());
  EXPECT_EQ(history->TotalUploadBytes(), 0);
  EXPECT_EQ(algo.communication_rounds(), 0);
}

TEST(FedPdTest, AlwaysCommunicateConvergesToConsensusOptimum) {
  QuadraticProblem problem(Spec());
  FedPd algo(Local(), /*rho=*/2.0f, /*comm_probability=*/1.0, 7);
  FullParticipationSelector selector(problem.num_clients());
  SimulationConfig config;
  config.max_rounds = 400;
  config.seed = 4;
  config.num_threads = 2;
  Simulation sim(&problem, &algo, &selector, config);
  auto history = sim.Run();
  ASSERT_TRUE(history.ok());
  EXPECT_LT(problem.DistanceToOptimum(sim.theta()), 0.15);
}

TEST(FedPdTest, AllClientsComputeEveryRound) {
  // The paper's critique: FedPD keeps every device busy each round. The
  // simulator reflects this via full participation in every record.
  QuadraticProblem problem(Spec());
  FedPd algo(Local(), 1.0f, 0.5, 7);
  FullParticipationSelector selector(problem.num_clients());
  SimulationConfig config;
  config.max_rounds = 10;
  config.seed = 5;
  Simulation sim(&problem, &algo, &selector, config);
  auto history = sim.Run();
  ASSERT_TRUE(history.ok());
  for (const RoundRecord& r : history->records()) {
    EXPECT_EQ(r.num_selected, problem.num_clients());
  }
}

}  // namespace
}  // namespace fedadmm
