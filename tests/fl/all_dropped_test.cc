// The all-dropped paths, sync and event-driven (satellite of the engine
// refactor): when every update misses the deadline the round must record
// the NaN train_loss sentinel, leave θ untouched, and — in the event modes
// — keep draining the event queue so the run still terminates after
// max_rounds records.

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <vector>

#include "core/fedadmm.h"
#include "fl/quadratic_problem.h"
#include "fl/selection.h"
#include "fl/simulation.h"
#include "sys/system_model.h"

namespace fedadmm {
namespace {

QuadraticSpec Spec() {
  QuadraticSpec spec;
  spec.num_clients = 8;
  spec.dim = 5;
  spec.heterogeneity = 1.0;
  spec.seed = 41;
  return spec;
}

FedAdmmOptions Options() {
  FedAdmmOptions options;
  options.local.learning_rate = 0.05f;
  options.local.batch_size = 4;
  options.local.max_epochs = 2;
  options.rho = StepSchedule(0.1);
  // η = |S_t|/m: required by the engine's event-mode guardrail (a fixed η
  // would overshoot m-fold on singleton/small batches).
  options.eta_active_fraction = true;
  return options;
}

// A deadline no client can meet: even one SGD step at uniform-preset speed
// takes longer than a nanosecond-scale cut-off.
SystemModel ImpossibleDeadlineModel(int clients) {
  FleetModel fleet =
      FleetModel::FromPreset("uniform", clients, 3).ValueOrDie();
  return SystemModel(
      std::move(fleet),
      MakeStragglerPolicy("deadline-drop", 1e-9).ValueOrDie());
}

struct RunOutput {
  History history;
  std::vector<float> theta;
};

RunOutput RunWithModel(ExecutionMode mode, const SystemModel* model,
                       int rounds, uint64_t seed = 7) {
  QuadraticProblem problem(Spec());
  FedAdmm algo(Options());
  UniformFractionSelector selector(8, 0.5);
  SimulationConfig config;
  config.max_rounds = rounds;
  config.seed = seed;
  config.num_threads = 2;
  config.mode = mode;
  Simulation sim(&problem, &algo, &selector, config);
  sim.set_system_model(model);
  RunOutput run;
  run.history = std::move(sim.Run()).ValueOrDie();
  run.theta = sim.theta();
  return run;
}

TEST(AllDroppedTest, SyncRoundRecordsNaNSentinelAndCounts) {
  const SystemModel model = ImpossibleDeadlineModel(8);
  const RunOutput run = RunWithModel(ExecutionMode::kSync, &model, 5);
  ASSERT_EQ(run.history.size(), 5);
  for (const RoundRecord& r : run.history.records()) {
    EXPECT_TRUE(std::isnan(r.train_loss)) << "round " << r.round;
    EXPECT_TRUE(std::isnan(r.staleness_mean)) << "round " << r.round;
    EXPECT_EQ(r.num_dropped, r.num_selected) << "round " << r.round;
    EXPECT_EQ(r.upload_bytes, 0) << "round " << r.round;
  }
}

TEST(AllDroppedTest, SyncLeavesThetaAtInitialModel) {
  // θ⁰ only depends on the seed's init stream, so a 1-round and a 5-round
  // all-dropped run must end at the identical untouched model.
  const SystemModel model = ImpossibleDeadlineModel(8);
  const RunOutput one = RunWithModel(ExecutionMode::kSync, &model, 1);
  const RunOutput five = RunWithModel(ExecutionMode::kSync, &model, 5);
  EXPECT_EQ(one.theta, five.theta);
}

TEST(AllDroppedTest, EventQueueDrainsWhenEveryCompletionMissesDeadline) {
  // Async with an impossible deadline: every completion event is a drop,
  // nothing is ever aggregated — the engine must keep draining the queue,
  // emit starvation records, and stop at max_rounds.
  const SystemModel model = ImpossibleDeadlineModel(8);
  const RunOutput run = RunWithModel(ExecutionMode::kAsync, &model, 6);
  ASSERT_EQ(run.history.size(), 6);
  double last_time = 0.0;
  for (const RoundRecord& r : run.history.records()) {
    EXPECT_EQ(r.num_selected, 0) << "round " << r.round;
    EXPECT_TRUE(std::isnan(r.train_loss)) << "round " << r.round;
    EXPECT_TRUE(std::isnan(r.staleness_mean)) << "round " << r.round;
    EXPECT_GT(r.num_dropped, 0) << "round " << r.round;
    EXPECT_EQ(r.upload_bytes, 0) << "round " << r.round;
    EXPECT_GE(r.sim_seconds, last_time);
    last_time = r.sim_seconds;
  }
}

TEST(AllDroppedTest, StarvedEventModesLeaveThetaUntouched) {
  // Sync and async starved runs share the seed, hence the same θ⁰; neither
  // ever aggregates, so both must end at that exact model.
  const SystemModel model = ImpossibleDeadlineModel(8);
  const RunOutput sync_run = RunWithModel(ExecutionMode::kSync, &model, 4);
  const RunOutput async_run = RunWithModel(ExecutionMode::kAsync, &model, 4);
  const RunOutput buffered_run =
      RunWithModel(ExecutionMode::kBuffered, &model, 4);
  EXPECT_EQ(sync_run.theta, async_run.theta);
  EXPECT_EQ(sync_run.theta, buffered_run.theta);
}

}  // namespace
}  // namespace fedadmm
