// The event-mode pre-flight guardrail (FederatedAlgorithm::
// ValidateForEventMode): FedADMM with a fixed η silently overshoots the
// tracking update m/|S_t|-fold under buffered/async aggregation (the PR 4
// footgun), and FedPD cannot form its full-population mean from partial
// batches. Both must fail fast with a clear Status — never crash mid-run,
// never run and diverge.

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "core/fedadmm.h"
#include "fl/algorithms/fedpd.h"
#include "fl/quadratic_problem.h"
#include "fl/selection.h"
#include "fl/simulation.h"
#include "sys/system_model.h"

namespace fedadmm {
namespace {

constexpr int kClients = 10;

QuadraticSpec Spec() {
  QuadraticSpec spec;
  spec.num_clients = kClients;
  spec.dim = 6;
  spec.seed = 44;
  return spec;
}

SystemModel Model() {
  FleetModel fleet =
      FleetModel::FromPreset("uniform", kClients, 2).ValueOrDie();
  return SystemModel(std::move(fleet),
                     MakeStragglerPolicy("wait-for-all", -1.0).ValueOrDie());
}

Result<History> RunAdmm(ExecutionMode mode, bool eta_active_fraction,
                        const SystemModel* model) {
  QuadraticProblem problem(Spec());
  FedAdmmOptions options;
  options.local.max_epochs = 1;
  options.rho = StepSchedule(0.3);
  options.eta = StepSchedule(1.0);  // the overshooting fixed schedule
  options.eta_active_fraction = eta_active_fraction;
  FedAdmm algo(options);
  UniformFractionSelector selector(kClients, 0.5);
  SimulationConfig config;
  config.max_rounds = 4;
  config.seed = 9;
  config.mode = mode;
  Simulation sim(&problem, &algo, &selector, config);
  if (model) sim.set_system_model(model);
  return sim.Run();
}

TEST(EtaGuardrailTest, FixedEtaIsRejectedInEventModes) {
  const SystemModel model = Model();
  for (ExecutionMode mode :
       {ExecutionMode::kBuffered, ExecutionMode::kAsync}) {
    const auto result = RunAdmm(mode, /*eta_active_fraction=*/false, &model);
    ASSERT_FALSE(result.ok()) << ExecutionModeName(mode);
    EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
    // The message must name the fix.
    EXPECT_NE(result.status().message().find("eta_active_fraction"),
              std::string::npos);
  }
}

TEST(EtaGuardrailTest, ActiveFractionEtaRunsInEventModes) {
  const SystemModel model = Model();
  for (ExecutionMode mode :
       {ExecutionMode::kBuffered, ExecutionMode::kAsync}) {
    EXPECT_TRUE(RunAdmm(mode, /*eta_active_fraction=*/true, &model).ok())
        << ExecutionModeName(mode);
  }
}

TEST(EtaGuardrailTest, FixedEtaStaysLegalInSyncMode) {
  // Sync aggregates the full wave, where a fixed η is the paper's Fig. 6
  // knob — the guardrail must not fire.
  EXPECT_TRUE(
      RunAdmm(ExecutionMode::kSync, /*eta_active_fraction=*/false, nullptr)
          .ok());
}

TEST(EtaGuardrailTest, FedPdRejectsEventModesWithStatusNotCrash) {
  const SystemModel model = Model();
  for (ExecutionMode mode :
       {ExecutionMode::kBuffered, ExecutionMode::kAsync}) {
    QuadraticProblem problem(Spec());
    LocalTrainSpec local;
    local.max_epochs = 1;
    FedPd algo(local, 0.5f, 0.5);
    FullParticipationSelector selector(kClients);
    SimulationConfig config;
    config.max_rounds = 3;
    config.mode = mode;
    Simulation sim(&problem, &algo, &selector, config);
    sim.set_system_model(&model);
    const auto result = sim.Run();
    ASSERT_FALSE(result.ok()) << ExecutionModeName(mode);
    EXPECT_NE(result.status().message().find("full population"),
              std::string::npos);
  }
}

}  // namespace
}  // namespace fedadmm
