#include "fl/local_solver.h"

#include <gtest/gtest.h>

#include "fl/quadratic_problem.h"
#include "tensor/vec.h"

namespace fedadmm {
namespace {

QuadraticProblem MakeProblem(double heterogeneity = 1.0) {
  QuadraticSpec spec;
  spec.num_clients = 4;
  spec.dim = 6;
  spec.heterogeneity = heterogeneity;
  spec.seed = 11;
  return QuadraticProblem(spec);
}

TEST(SampleEpochsTest, FixedWhenHeterogeneityOff) {
  LocalTrainSpec spec;
  spec.max_epochs = 5;
  spec.variable_epochs = false;
  Rng rng(1);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(SampleEpochs(spec, &rng), 5);
}

TEST(SampleEpochsTest, UniformWhenHeterogeneityOn) {
  LocalTrainSpec spec;
  spec.max_epochs = 5;
  spec.variable_epochs = true;
  Rng rng(2);
  std::vector<int> counts(6, 0);
  for (int i = 0; i < 5000; ++i) {
    const int e = SampleEpochs(spec, &rng);
    ASSERT_GE(e, 1);
    ASSERT_LE(e, 5);
    ++counts[static_cast<size_t>(e)];
  }
  for (int e = 1; e <= 5; ++e) EXPECT_NEAR(counts[static_cast<size_t>(e)], 1000, 150);
}

TEST(LocalSolverTest, ReducesLocalObjective) {
  QuadraticProblem problem = MakeProblem();
  auto local = problem.MakeLocalProblem(0, 0);
  std::vector<float> w(6, 2.0f);
  std::vector<float> grad(6);
  const double before = local->FullLossGradient(w, grad);

  LocalTrainSpec spec;
  spec.learning_rate = 0.1f;
  spec.batch_size = 0;
  spec.max_epochs = 10;
  Rng rng(3);
  const auto result = RunLocalSgd(local.get(), spec, 10, w, &rng, nullptr);
  const double after = local->FullLossGradient(w, grad);
  EXPECT_LT(after, before);
  EXPECT_EQ(result.epochs_run, 10);
  EXPECT_EQ(result.steps_run, 10);  // full batch: one step per epoch
}

TEST(LocalSolverTest, TransformChangesTrajectory) {
  QuadraticProblem problem = MakeProblem();
  auto local = problem.MakeLocalProblem(1, 0);
  LocalTrainSpec spec;
  spec.learning_rate = 0.05f;
  spec.batch_size = 0;
  spec.max_epochs = 3;

  std::vector<float> w_plain(6, 1.0f), w_prox(6, 1.0f);
  Rng rng_a(4), rng_b(4);
  RunLocalSgd(local.get(), spec, 3, w_plain, &rng_a, nullptr);
  const std::vector<float> anchor(6, 1.0f);
  auto prox = [&anchor](std::span<const float> w, std::span<float> g) {
    for (size_t i = 0; i < g.size(); ++i) g[i] += 10.0f * (w[i] - anchor[i]);
  };
  RunLocalSgd(local.get(), spec, 3, w_prox, &rng_b, prox);
  // The proximal pull keeps w_prox closer to the anchor.
  EXPECT_LT(vec::SquaredDistance(w_prox, anchor),
            vec::SquaredDistance(w_plain, anchor));
}

TEST(LocalSolverTest, ReportsFinalTransformedGradNorm) {
  QuadraticProblem problem = MakeProblem();
  auto local = problem.MakeLocalProblem(2, 0);
  std::vector<float> w(6, 0.5f);
  LocalTrainSpec spec;
  spec.learning_rate = 0.2f;
  spec.batch_size = 0;
  Rng rng(5);
  const auto result = RunLocalSgd(local.get(), spec, 50, w, &rng, nullptr);
  std::vector<float> grad(6);
  local->FullLossGradient(w, grad);
  EXPECT_NEAR(result.final_grad_norm_sq, vec::SquaredL2Norm(grad), 1e-6);
  EXPECT_LT(result.final_grad_norm_sq, 1e-4);
}

TEST(LocalSolverTest, EpsilonStopsEarly) {
  QuadraticProblem problem = MakeProblem();
  auto local = problem.MakeLocalProblem(0, 0);
  std::vector<float> w(6, 1.0f);
  LocalTrainSpec spec;
  spec.learning_rate = 0.2f;
  spec.batch_size = 0;
  spec.epsilon = 1e-2;  // generous target: reached before 100 epochs
  Rng rng(6);
  const auto result = RunLocalSgd(local.get(), spec, 100, w, &rng, nullptr);
  EXPECT_LT(result.epochs_run, 100);
  EXPECT_LE(result.final_grad_norm_sq, 1e-2);
}

TEST(LocalSolverTest, MoreEpochsYieldSmallerInexactness) {
  // Table IV intuition: larger local workload -> smaller attained ε_i.
  QuadraticProblem problem = MakeProblem();
  LocalTrainSpec spec;
  spec.learning_rate = 0.1f;
  spec.batch_size = 0;

  auto run = [&](int epochs) {
    auto local = problem.MakeLocalProblem(3, 0);
    std::vector<float> w(6, 1.5f);
    Rng rng(7);
    return RunLocalSgd(local.get(), spec, epochs, w, &rng, nullptr)
        .final_grad_norm_sq;
  };
  const double e1 = run(1);
  const double e5 = run(5);
  const double e20 = run(20);
  EXPECT_GT(e1, e5);
  EXPECT_GT(e5, e20);
}

TEST(LocalSolverTest, DeterministicGivenSeed) {
  QuadraticProblem problem = MakeProblem();
  LocalTrainSpec spec;
  spec.learning_rate = 0.05f;
  spec.batch_size = 2;
  auto run = [&](uint64_t seed) {
    auto local = problem.MakeLocalProblem(1, 0);
    std::vector<float> w(6, 0.3f);
    Rng rng(seed);
    RunLocalSgd(local.get(), spec, 4, w, &rng, nullptr);
    return w;
  };
  EXPECT_EQ(run(42), run(42));
}

TEST(LocalSolverTest, StrongConvexityFromLargeRhoPreventsDivergence) {
  // With a large proximal coefficient the augmented objective is strongly
  // convex even under an aggressive learning rate that would diverge on the
  // raw objective; this is claim (i) of the paper's "Dual variables"
  // discussion.
  QuadraticProblem problem = MakeProblem(3.0);
  auto local = problem.MakeLocalProblem(0, 0);
  const std::vector<float> theta(6, 0.0f);

  LocalTrainSpec spec;
  spec.learning_rate = 0.08f;
  spec.batch_size = 0;
  const float rho = 10.0f;
  auto admm = [&theta, rho](std::span<const float> w, std::span<float> g) {
    for (size_t i = 0; i < g.size(); ++i) g[i] += rho * (w[i] - theta[i]);
  };
  std::vector<float> w(6, 1.0f);
  Rng rng(8);
  const auto result = RunLocalSgd(local.get(), spec, 30, w, &rng, admm);
  EXPECT_TRUE(std::isfinite(result.mean_loss));
  EXPECT_LT(vec::MaxAbs(w), 10.0f);
}

}  // namespace
}  // namespace fedadmm
