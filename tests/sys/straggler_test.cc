#include "sys/straggler.h"

#include <gtest/gtest.h>

namespace fedadmm {
namespace {

ClientTiming Timing(double download, double compute, double upload) {
  ClientTiming t;
  t.download_seconds = download;
  t.compute_seconds = compute;
  t.upload_seconds = upload;
  return t;
}

TEST(WaitForAllTest, AdmitsEverythingAndWaitsForSlowest) {
  WaitForAllPolicy policy;
  const StragglerDecision fast = policy.Judge(Timing(0.1, 1.0, 0.1));
  const StragglerDecision slow = policy.Judge(Timing(0.1, 50.0, 0.1));
  EXPECT_EQ(fast.fate, ClientFate::kAdmitted);
  EXPECT_EQ(slow.fate, ClientFate::kAdmitted);
  EXPECT_DOUBLE_EQ(slow.work_fraction, 1.0);
  EXPECT_DOUBLE_EQ(policy.RoundSeconds({fast, slow}), 50.2);
}

TEST(DeadlineDropTest, LateClientsAreDropped) {
  DeadlineDropPolicy policy(/*deadline_seconds=*/5.0);
  const StragglerDecision in_time = policy.Judge(Timing(0.5, 4.0, 0.5));
  EXPECT_EQ(in_time.fate, ClientFate::kAdmitted);
  EXPECT_DOUBLE_EQ(in_time.finish_seconds, 5.0);

  const StragglerDecision late = policy.Judge(Timing(0.5, 10.0, 0.5));
  EXPECT_EQ(late.fate, ClientFate::kDropped);
  // The server still waits out the deadline for the client it then drops.
  EXPECT_DOUBLE_EQ(late.finish_seconds, 5.0);
}

TEST(DeadlineDropTest, RoundLastsUntilLastTrackedClient) {
  DeadlineDropPolicy policy(5.0);
  const StragglerDecision fast = policy.Judge(Timing(0.0, 1.0, 0.0));
  EXPECT_DOUBLE_EQ(policy.RoundSeconds({fast}), 1.0);
  const StragglerDecision late = policy.Judge(Timing(0.0, 9.0, 0.0));
  EXPECT_DOUBLE_EQ(policy.RoundSeconds({fast, late}), 5.0);
}

TEST(DeadlineAdmitPartialTest, InTimeClientIsUntouched) {
  DeadlineAdmitPartialPolicy policy(5.0);
  const StragglerDecision d = policy.Judge(Timing(0.5, 2.0, 0.5));
  EXPECT_EQ(d.fate, ClientFate::kAdmitted);
  EXPECT_DOUBLE_EQ(d.work_fraction, 1.0);
  EXPECT_DOUBLE_EQ(d.finish_seconds, 3.0);
}

TEST(DeadlineAdmitPartialTest, StragglerKeepsTheFractionThatFit) {
  DeadlineAdmitPartialPolicy policy(5.0);
  // Transfers take 1s; 4s of compute budget remain out of 8s needed.
  const StragglerDecision d = policy.Judge(Timing(0.5, 8.0, 0.5));
  EXPECT_EQ(d.fate, ClientFate::kAdmittedPartial);
  EXPECT_DOUBLE_EQ(d.work_fraction, 0.5);
  EXPECT_DOUBLE_EQ(d.finish_seconds, 5.0);
}

TEST(DeadlineAdmitPartialTest, TransferBoundClientIsDropped) {
  DeadlineAdmitPartialPolicy policy(5.0);
  // Even with zero compute admitted the transfers alone overrun.
  const StragglerDecision d = policy.Judge(Timing(3.0, 8.0, 3.0));
  EXPECT_EQ(d.fate, ClientFate::kDropped);
  EXPECT_DOUBLE_EQ(d.finish_seconds, 5.0);
}

TEST(DownloadFractionTest, CompletedDownloadBillsFullEvenWhenDropped) {
  DeadlineDropPolicy policy(5.0);
  // Download (1s) finished well before the 5s cut-off; compute overran.
  const StragglerDecision d = policy.Judge(Timing(1.0, 20.0, 1.0));
  EXPECT_EQ(d.fate, ClientFate::kDropped);
  EXPECT_DOUBLE_EQ(d.download_fraction, 1.0);
}

TEST(DownloadFractionTest, MidDownloadDropBillsReceivedShare) {
  DeadlineDropPolicy policy(5.0);
  // The broadcast alone needs 20s; 5s of it fit — 25% received.
  const StragglerDecision d = policy.Judge(Timing(20.0, 1.0, 1.0));
  EXPECT_EQ(d.fate, ClientFate::kDropped);
  EXPECT_DOUBLE_EQ(d.download_fraction, 0.25);
}

TEST(DownloadFractionTest, AdmitPartialDropAlsoReportsFraction) {
  DeadlineAdmitPartialPolicy policy(5.0);
  const StragglerDecision d = policy.Judge(Timing(10.0, 8.0, 3.0));
  EXPECT_EQ(d.fate, ClientFate::kDropped);
  EXPECT_DOUBLE_EQ(d.download_fraction, 0.5);
}

TEST(DownloadFractionTest, AdmittedClientsAlwaysReportFull) {
  WaitForAllPolicy wait;
  DeadlineAdmitPartialPolicy partial(5.0);
  EXPECT_DOUBLE_EQ(wait.Judge(Timing(9.0, 9.0, 9.0)).download_fraction, 1.0);
  EXPECT_DOUBLE_EQ(partial.Judge(Timing(0.5, 8.0, 0.5)).download_fraction,
                   1.0);
}

TEST(DeadlineAdmitPartialTest, AdmitsStrictlyMoreThanDrop) {
  // The differentiator the bench exercises: identical timings, different
  // policies — partial admission salvages what drop throws away.
  const ClientTiming straggler = Timing(0.5, 8.0, 0.5);
  DeadlineDropPolicy drop(5.0);
  DeadlineAdmitPartialPolicy partial(5.0);
  EXPECT_EQ(drop.Judge(straggler).fate, ClientFate::kDropped);
  EXPECT_EQ(partial.Judge(straggler).fate, ClientFate::kAdmittedPartial);
}

}  // namespace
}  // namespace fedadmm
