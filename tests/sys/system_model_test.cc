#include "sys/system_model.h"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <vector>

#include "core/fedadmm.h"
#include "fl/quadratic_problem.h"
#include "fl/selection.h"
#include "fl/simulation.h"

namespace fedadmm {
namespace {

QuadraticSpec Spec() {
  QuadraticSpec spec;
  spec.num_clients = 12;
  spec.dim = 7;
  spec.heterogeneity = 1.2;
  spec.seed = 91;
  return spec;
}

FedAdmmOptions Options() {
  FedAdmmOptions options;
  options.local.learning_rate = 0.05f;
  options.local.batch_size = 4;
  options.local.max_epochs = 3;
  options.local.variable_epochs = true;
  options.rho = StepSchedule(0.1);
  return options;
}

FleetModel UniformFleet(int clients) {
  return FleetModel::FromPreset("uniform", clients, 3).ValueOrDie();
}

// Runs FedADMM on the quadratic problem, optionally under a system model.
History RunWithModel(const SystemModel* model, int threads,
                     std::vector<float>* theta_out = nullptr) {
  QuadraticProblem problem(Spec());
  FedAdmm algo(Options());
  UniformFractionSelector selector(12, 0.5);
  SimulationConfig config;
  config.max_rounds = 6;
  config.seed = 7;
  config.num_threads = threads;
  Simulation sim(&problem, &algo, &selector, config);
  sim.set_system_model(model);
  History history = std::move(sim.Run()).ValueOrDie();
  if (theta_out) *theta_out = sim.theta();
  return history;
}

TEST(SystemModelTest, JudgeRoundCountsFates) {
  // Two clients: a fast one and a 10x-slower straggler.
  ClientSystemProfile fast;
  fast.device.steps_per_second = 1000.0;
  ClientSystemProfile slow = fast;
  slow.device.steps_per_second = 10.0;
  SystemModel model(FleetModel({fast, slow}),
                    std::make_unique<DeadlineDropPolicy>(1.0));

  std::vector<UpdateMessage> updates(2);
  updates[0].client_id = 0;
  updates[0].steps_run = 100;  // 0.1s: in time
  updates[1].client_id = 1;
  updates[1].steps_run = 100;  // 10s: dropped
  const RoundJudgment judgment = model.JudgeRound(updates, 0);
  ASSERT_EQ(judgment.decisions.size(), 2u);
  EXPECT_EQ(judgment.decisions[0].fate, ClientFate::kAdmitted);
  EXPECT_EQ(judgment.decisions[1].fate, ClientFate::kDropped);
  EXPECT_EQ(judgment.num_dropped, 1);
  EXPECT_EQ(judgment.num_admitted_partial, 0);
  EXPECT_DOUBLE_EQ(judgment.round_seconds, 1.0);  // waits out the deadline
}

TEST(SystemModelTest, WaitForAllMatchesUnmodeledTrajectoryBitwise) {
  // Attaching a system model must only *measure* when nothing is dropped:
  // wait-for-all admits everything, so θ must equal the unmodeled run.
  SystemModel model(UniformFleet(12), std::make_unique<WaitForAllPolicy>());
  std::vector<float> theta_modeled, theta_plain;
  const History modeled = RunWithModel(&model, 1, &theta_modeled);
  const History plain = RunWithModel(nullptr, 1, &theta_plain);
  EXPECT_EQ(theta_modeled, theta_plain);

  // The virtual clock runs only in the modeled run, and monotonically.
  EXPECT_DOUBLE_EQ(plain.TotalSimSeconds(), 0.0);
  double prev = 0.0;
  for (const RoundRecord& r : modeled.records()) {
    EXPECT_GT(r.sim_seconds, prev);
    prev = r.sim_seconds;
    EXPECT_EQ(r.num_dropped, 0);
    EXPECT_EQ(r.num_admitted_partial, 0);
  }
}

TEST(SystemModelTest, SimSecondsIsThreadCountInvariant) {
  SystemModel model(UniformFleet(12), std::make_unique<WaitForAllPolicy>());
  std::vector<float> theta1, theta3;
  const History h1 = RunWithModel(&model, 1, &theta1);
  const History h3 = RunWithModel(&model, 3, &theta3);
  EXPECT_EQ(theta1, theta3);
  ASSERT_EQ(h1.size(), h3.size());
  for (int i = 0; i < h1.size(); ++i) {
    EXPECT_EQ(h1.records()[i].sim_seconds, h3.records()[i].sim_seconds);
  }
}

TEST(SystemModelTest, ImpossibleDeadlineDropsEveryoneAndFreezesTheta) {
  SystemModel model(UniformFleet(12),
                    std::make_unique<DeadlineDropPolicy>(1.0e-9));
  std::vector<float> theta_frozen;
  const History history = RunWithModel(&model, 1, &theta_frozen);
  for (const RoundRecord& r : history.records()) {
    EXPECT_EQ(r.num_dropped, r.num_selected);
    EXPECT_EQ(r.upload_bytes, 0);             // nothing arrived
    EXPECT_TRUE(std::isnan(r.train_loss));    // no loss observed either
  }
  // No update was ever aggregated: θ must still be the initialization.
  QuadraticProblem problem(Spec());
  Rng init_rng = Rng(7).Fork(0x1417);
  EXPECT_EQ(theta_frozen, problem.InitialParameters(&init_rng));
}

TEST(SystemModelTest, PartialAdmissionSalvagesTightDeadline) {
  // A deadline the full work misses but the transfers meet: admit-partial
  // keeps (scaled) updates where drop loses the round entirely.
  FleetModel slow_fleet = [] {
    ClientSystemProfile p;
    p.device.steps_per_second = 1.0;  // compute-bound
    p.network.latency_seconds = 0.0;
    std::vector<ClientSystemProfile> profiles(12, p);
    return FleetModel(std::move(profiles), "slow");
  }();
  SystemModel drop(slow_fleet, std::make_unique<DeadlineDropPolicy>(0.5));
  SystemModel partial(slow_fleet,
                      std::make_unique<DeadlineAdmitPartialPolicy>(0.5));
  const History dropped = RunWithModel(&drop, 1);
  const History admitted = RunWithModel(&partial, 1);
  EXPECT_EQ(dropped.TotalDropped(),
            12 * 6 / 2);  // every selected client, every round
  EXPECT_EQ(admitted.TotalDropped(), 0);
  int partial_total = 0;
  for (const RoundRecord& r : admitted.records()) {
    partial_total += r.num_admitted_partial;
  }
  EXPECT_GT(partial_total, 0);
}

TEST(SystemModelTest, HistoryTimeToAccuracyQueries) {
  SystemModel model(UniformFleet(12), std::make_unique<WaitForAllPolicy>());
  const History history = RunWithModel(&model, 1);
  const double final_acc = history.FinalAccuracy();
  ASSERT_GT(final_acc, 0.0);
  const double t = history.SimSecondsToAccuracy(final_acc * 0.5);
  EXPECT_GT(t, 0.0);
  EXPECT_LE(t, history.TotalSimSeconds());
  EXPECT_EQ(history.SimSecondsToAccuracy(2.0), -1.0);  // unreachable
}

TEST(SystemModelTest, PolicyFactory) {
  EXPECT_TRUE(MakeStragglerPolicy("wait-for-all", -1.0).ok());
  EXPECT_TRUE(MakeStragglerPolicy("deadline-drop", 2.0).ok());
  EXPECT_TRUE(MakeStragglerPolicy("deadline-admit-partial", 2.0).ok());
  EXPECT_FALSE(MakeStragglerPolicy("deadline-drop", 0.0).ok());
  EXPECT_FALSE(MakeStragglerPolicy("yolo", 1.0).ok());
  EXPECT_EQ(MakeStragglerPolicy("deadline-drop", 2.0)
                .ValueOrDie()
                ->name(),
            "deadline-drop");
}

TEST(SystemModelTest, NameCombinesFleetAndPolicy) {
  SystemModel model(UniformFleet(4),
                    std::make_unique<DeadlineDropPolicy>(1.0));
  EXPECT_EQ(model.name(), "uniform/deadline-drop");
}

}  // namespace
}  // namespace fedadmm
