// Property/fuzz coverage for the engine's event ordering: random
// push/pop interleavings must always pop in strict (time, sequence)
// order, equal times must break ties by dispatch sequence, and the
// sharded per-worker heaps (ShardedEventQueue) must merge into exactly
// the pop order of a single global heap at every shard count.

#include "sys/event_queue.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "util/rng.h"

namespace fedadmm {
namespace {

ClientCompletionEvent Event(double time, int64_t sequence, int client) {
  ClientCompletionEvent e;
  e.time = time;
  e.sequence = sequence;
  e.client_id = client;
  return e;
}

// Strict total order on (time, sequence); sequence is unique per run.
bool StrictlyOrdered(const ClientCompletionEvent& a,
                     const ClientCompletionEvent& b) {
  if (a.time != b.time) return a.time < b.time;
  return a.sequence < b.sequence;
}

// A randomized stream of events with intentionally heavy time ties:
// times are drawn from a small grid so equal-time groups are common and
// the sequence tie-break is exercised, not just reachable.
std::vector<ClientCompletionEvent> RandomEvents(Rng* rng, int n,
                                                int num_clients) {
  std::vector<ClientCompletionEvent> events;
  events.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    const double time = 0.25 * static_cast<double>(rng->UniformInt(0, 40));
    const int client = static_cast<int>(rng->UniformInt(0, num_clients - 1));
    events.push_back(Event(time, /*sequence=*/i, client));
  }
  // Push order must not matter: shuffle away the sequence correlation.
  rng->Shuffle(&events);
  return events;
}

TEST(EventQueuePropertyTest, RandomPushPopInterleavingsPopInOrder) {
  Rng rng(0xE7E27u);
  for (int trial = 0; trial < 50; ++trial) {
    Rng trial_rng = rng.Fork(static_cast<uint64_t>(trial));
    const std::vector<ClientCompletionEvent> events =
        RandomEvents(&trial_rng, /*n=*/120, /*num_clients=*/17);
    EventQueue queue;
    size_t pushed = 0;
    std::vector<ClientCompletionEvent> popped;
    // Interleave: at each step flip a coin between push (while events
    // remain) and pop (while the queue is non-empty).
    while (pushed < events.size() || !queue.empty()) {
      const bool can_push = pushed < events.size();
      const bool do_push =
          can_push && (queue.empty() || trial_rng.Bernoulli(0.55));
      if (do_push) {
        queue.Push(events[pushed++]);
      } else {
        popped.push_back(queue.Pop());
      }
    }
    ASSERT_EQ(popped.size(), events.size());
    // Each pop is the minimum of what was in the queue at that moment, so
    // the full popped stream need not be globally sorted — but within any
    // stretch with no interleaved push it must be, and every event must
    // come out exactly once. Check the exactly-once property here; global
    // order is checked in the drain test below.
    std::vector<char> seen(events.size(), 0);
    for (const ClientCompletionEvent& e : popped) {
      ASSERT_GE(e.sequence, 0);
      ASSERT_LT(static_cast<size_t>(e.sequence), events.size());
      EXPECT_EQ(seen[static_cast<size_t>(e.sequence)], 0)
          << "event popped twice";
      seen[static_cast<size_t>(e.sequence)] = 1;
    }
  }
}

TEST(EventQueuePropertyTest, FullDrainIsStrictlySortedWithSequenceTies) {
  Rng rng(0xD7A14u);
  for (int trial = 0; trial < 50; ++trial) {
    Rng trial_rng = rng.Fork(static_cast<uint64_t>(trial));
    const std::vector<ClientCompletionEvent> events =
        RandomEvents(&trial_rng, /*n=*/200, /*num_clients=*/23);
    EventQueue queue;
    for (const ClientCompletionEvent& e : events) queue.Push(e);
    std::vector<ClientCompletionEvent> popped;
    while (!queue.empty()) popped.push_back(queue.Pop());
    ASSERT_EQ(popped.size(), events.size());
    for (size_t i = 1; i < popped.size(); ++i) {
      EXPECT_TRUE(StrictlyOrdered(popped[i - 1], popped[i]))
          << "trial " << trial << " position " << i << ": ("
          << popped[i - 1].time << "," << popped[i - 1].sequence
          << ") !< (" << popped[i].time << "," << popped[i].sequence << ")";
    }
  }
}

TEST(EventQueuePropertyTest, ShardedDrainMatchesGlobalHeapAtEveryW) {
  Rng rng(0x5AADEDu);
  const int shard_counts[] = {1, 2, 3, 4, 8};
  for (int trial = 0; trial < 30; ++trial) {
    Rng trial_rng = rng.Fork(static_cast<uint64_t>(trial));
    const std::vector<ClientCompletionEvent> events =
        RandomEvents(&trial_rng, /*n=*/150, /*num_clients=*/31);
    // Reference: one global heap.
    EventQueue global;
    for (const ClientCompletionEvent& e : events) global.Push(e);
    std::vector<ClientCompletionEvent> reference;
    while (!global.empty()) reference.push_back(global.Pop());
    for (int w : shard_counts) {
      ShardedEventQueue sharded(w);
      EXPECT_EQ(sharded.num_shards(), w);
      for (const ClientCompletionEvent& e : events) sharded.Push(e);
      EXPECT_EQ(sharded.size(), static_cast<int>(events.size()));
      int shard_total = 0;
      for (int s = 0; s < sharded.num_shards(); ++s) {
        shard_total += sharded.shard_size(s);
      }
      EXPECT_EQ(shard_total, sharded.size());
      for (size_t i = 0; i < reference.size(); ++i) {
        ASSERT_FALSE(sharded.empty());
        EXPECT_EQ(sharded.Peek().sequence, reference[i].sequence);
        const ClientCompletionEvent e = sharded.Pop();
        EXPECT_EQ(e.sequence, reference[i].sequence) << "W=" << w;
        EXPECT_EQ(e.client_id, reference[i].client_id) << "W=" << w;
        EXPECT_EQ(e.time, reference[i].time) << "W=" << w;
      }
      EXPECT_TRUE(sharded.empty());
    }
  }
}

TEST(EventQueuePropertyTest, ShardedInterleavedPushPopMatchesGlobal) {
  // Same coin-flip interleaving run in lockstep against both queues: the
  // two must agree pop-by-pop even when pushes arrive mid-drain.
  Rng rng(0x1E4A7u);
  const int shard_counts[] = {2, 4, 8};
  for (int w : shard_counts) {
    for (int trial = 0; trial < 20; ++trial) {
      Rng trial_rng = rng.Fork(static_cast<uint64_t>(w),
                               static_cast<uint64_t>(trial));
      const std::vector<ClientCompletionEvent> events =
          RandomEvents(&trial_rng, /*n=*/100, /*num_clients=*/13);
      EventQueue global;
      ShardedEventQueue sharded(w);
      size_t pushed = 0;
      while (pushed < events.size() || !global.empty()) {
        const bool can_push = pushed < events.size();
        const bool do_push =
            can_push && (global.empty() || trial_rng.Bernoulli(0.5));
        if (do_push) {
          global.Push(events[pushed]);
          sharded.Push(events[pushed]);
          ++pushed;
        } else {
          const ClientCompletionEvent a = global.Pop();
          const ClientCompletionEvent b = sharded.Pop();
          ASSERT_EQ(a.sequence, b.sequence) << "W=" << w;
          ASSERT_EQ(a.client_id, b.client_id) << "W=" << w;
          ASSERT_EQ(a.time, b.time) << "W=" << w;
        }
        ASSERT_EQ(global.size(), sharded.size());
      }
      EXPECT_TRUE(sharded.empty());
    }
  }
}

TEST(EventQueuePropertyTest, ShardedClampsNonPositiveShardCounts) {
  ShardedEventQueue zero(0);
  EXPECT_EQ(zero.num_shards(), 1);
  ShardedEventQueue negative(-3);
  EXPECT_EQ(negative.num_shards(), 1);
  zero.Push(Event(1.0, 0, 42));
  EXPECT_EQ(zero.Pop().client_id, 42);
}

}  // namespace
}  // namespace fedadmm
