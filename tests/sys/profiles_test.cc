#include "sys/profiles.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

namespace fedadmm {
namespace {

TEST(FleetModelTest, UnknownPresetIsRejected) {
  EXPECT_FALSE(FleetModel::FromPreset("warp-drive", 10, 1).ok());
  EXPECT_FALSE(FleetModel::FromPreset("uniform", 0, 1).ok());
}

TEST(FleetModelTest, AllPresetNamesBuild) {
  for (const std::string& preset : FleetPresetNames()) {
    const auto fleet = FleetModel::FromPreset(preset, 16, 7);
    ASSERT_TRUE(fleet.ok()) << preset;
    EXPECT_EQ(fleet.ValueOrDie().num_clients(), 16);
    EXPECT_EQ(fleet.ValueOrDie().name(), preset);
  }
}

TEST(FleetModelTest, PresetSamplingIsDeterministic) {
  for (const std::string& preset : FleetPresetNames()) {
    const FleetModel a = FleetModel::FromPreset(preset, 32, 5).ValueOrDie();
    const FleetModel b = FleetModel::FromPreset(preset, 32, 5).ValueOrDie();
    for (int c = 0; c < 32; ++c) {
      EXPECT_EQ(a.profile(c).device.steps_per_second,
                b.profile(c).device.steps_per_second)
          << preset << " client " << c;
      EXPECT_EQ(a.profile(c).network.upload_bytes_per_second,
                b.profile(c).network.upload_bytes_per_second);
    }
  }
}

TEST(FleetModelTest, DifferentSeedsDiverge) {
  const FleetModel a =
      FleetModel::FromPreset("lognormal-speed", 32, 5).ValueOrDie();
  const FleetModel b =
      FleetModel::FromPreset("lognormal-speed", 32, 6).ValueOrDie();
  bool any_diff = false;
  for (int c = 0; c < 32; ++c) {
    any_diff |= a.profile(c).device.steps_per_second !=
                b.profile(c).device.steps_per_second;
  }
  EXPECT_TRUE(any_diff);
}

TEST(FleetModelTest, ProfilesStayInSaneRanges) {
  for (const std::string& preset : FleetPresetNames()) {
    const FleetModel fleet = FleetModel::FromPreset(preset, 64, 3).ValueOrDie();
    for (int c = 0; c < fleet.num_clients(); ++c) {
      const ClientSystemProfile& p = fleet.profile(c);
      EXPECT_GT(p.device.steps_per_second, 0.0);
      EXPECT_GT(p.device.availability, 0.0);
      EXPECT_LE(p.device.availability, 1.0);
      EXPECT_GT(p.network.upload_bytes_per_second, 0.0);
      EXPECT_GT(p.network.download_bytes_per_second, 0.0);
      EXPECT_GE(p.network.latency_seconds, 0.0);
    }
  }
}

TEST(FleetModelTest, ChurnPresetHasLowAvailability) {
  const FleetModel fleet =
      FleetModel::FromPreset("cross-device-churn", 64, 3).ValueOrDie();
  for (int c = 0; c < fleet.num_clients(); ++c) {
    EXPECT_LE(fleet.profile(c).device.availability, 0.6);
  }
}

TEST(FleetModelTest, AvailabilityIsDeterministicPerStream) {
  const FleetModel fleet =
      FleetModel::FromPreset("cross-device-churn", 16, 9).ValueOrDie();
  const Rng stream(42);
  for (int c = 0; c < 16; ++c) {
    EXPECT_EQ(fleet.IsAvailable(c, 3, stream), fleet.IsAvailable(c, 3, stream));
  }
}

TEST(FleetModelTest, TraceOverridesProbability) {
  ClientSystemProfile p;
  p.device.availability = 1.0;
  p.device.availability_trace = {1, 0, 0};  // period-3 trace
  FleetModel fleet({p});
  const Rng stream(1);
  EXPECT_TRUE(fleet.IsAvailable(0, 0, stream));
  EXPECT_FALSE(fleet.IsAvailable(0, 1, stream));
  EXPECT_FALSE(fleet.IsAvailable(0, 2, stream));
  EXPECT_TRUE(fleet.IsAvailable(0, 3, stream));  // wraps around
}

TEST(FleetModelTest, CsvRoundTrip) {
  FleetModel fleet = FleetModel::FromPreset("cellular", 8, 11).ValueOrDie();
  const std::string path = ::testing::TempDir() + "/fleet_roundtrip.csv";
  ASSERT_TRUE(fleet.WriteCsv(path).ok());
  const auto loaded = FleetModel::FromTraceCsv(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(loaded.ValueOrDie().num_clients(), 8);
  for (int c = 0; c < 8; ++c) {
    const ClientSystemProfile& a = fleet.profile(c);
    const ClientSystemProfile& b = loaded.ValueOrDie().profile(c);
    EXPECT_DOUBLE_EQ(a.device.steps_per_second, b.device.steps_per_second);
    EXPECT_DOUBLE_EQ(a.network.upload_bytes_per_second,
                     b.network.upload_bytes_per_second);
    EXPECT_DOUBLE_EQ(a.network.download_bytes_per_second,
                     b.network.download_bytes_per_second);
    EXPECT_DOUBLE_EQ(a.network.latency_seconds, b.network.latency_seconds);
    EXPECT_DOUBLE_EQ(a.device.availability, b.device.availability);
  }
  std::remove(path.c_str());
}

TEST(FleetModelTest, CsvTraceColumnRoundTrips) {
  ClientSystemProfile p;
  p.device.availability_trace = {1, 1, 0, 1};
  FleetModel fleet({p});
  const std::string path = ::testing::TempDir() + "/fleet_trace.csv";
  ASSERT_TRUE(fleet.WriteCsv(path).ok());
  const FleetModel loaded = FleetModel::FromTraceCsv(path).ValueOrDie();
  EXPECT_EQ(loaded.profile(0).device.availability_trace,
            (std::vector<uint8_t>{1, 1, 0, 1}));
  std::remove(path.c_str());
}

TEST(FleetModelTest, CrlfTerminatedTraceCsvParsesExactly) {
  // Fleet traces exported on Windows (or shuttled through tools that
  // normalize to \r\n) must load with every numeric field exact — the old
  // parser swallowed unquoted CRs silently, which at least left numbers
  // intact, but a strict-suffix numeric validator would reject "1\r";
  // either way CRLF handling belongs in the parser, not each caller.
  const std::string path = ::testing::TempDir() + "/fleet_crlf.csv";
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  std::fputs(
      "client,steps_per_second,upload_bytes_per_second,"
      "download_bytes_per_second,latency_seconds,availability,trace\r\n"
      "0,123.5,1048576,2097152,0.025,0.75,101\r\n"
      "1,16777217,1e6,1e6,0.01,1,\r\n",
      f);
  std::fclose(f);
  const auto loaded = FleetModel::FromTraceCsv(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  const FleetModel& fleet = loaded.ValueOrDie();
  ASSERT_EQ(fleet.num_clients(), 2);
  EXPECT_DOUBLE_EQ(fleet.profile(0).device.steps_per_second, 123.5);
  EXPECT_DOUBLE_EQ(fleet.profile(0).network.upload_bytes_per_second,
                   1048576.0);
  EXPECT_DOUBLE_EQ(fleet.profile(0).network.download_bytes_per_second,
                   2097152.0);
  EXPECT_DOUBLE_EQ(fleet.profile(0).network.latency_seconds, 0.025);
  EXPECT_DOUBLE_EQ(fleet.profile(0).device.availability, 0.75);
  EXPECT_EQ(fleet.profile(0).device.availability_trace,
            (std::vector<uint8_t>{1, 0, 1}));
  // The last field of a CRLF row must not carry the '\r' (it is the trace
  // column here; an empty trace must stay empty, not become "\r").
  EXPECT_TRUE(fleet.profile(1).device.availability_trace.empty());
  // > 2^24: digit-exact through parse (pairs with the writer guarantee).
  EXPECT_DOUBLE_EQ(fleet.profile(1).device.steps_per_second, 16777217.0);
  std::remove(path.c_str());
}

TEST(FleetModelTest, MalformedCsvIsRejected) {
  const std::string path = ::testing::TempDir() + "/fleet_bad.csv";
  auto write = [&](const char* body) {
    std::FILE* f = std::fopen(path.c_str(), "w");
    ASSERT_NE(f, nullptr);
    std::fputs(body, f);
    std::fclose(f);
  };
  const char* header =
      "client,steps_per_second,upload_bytes_per_second,"
      "download_bytes_per_second,latency_seconds,availability,trace\n";
  // Negative throughput.
  write((std::string(header) + "0,-5,1e6,1e6,0.01,1,\n").c_str());
  EXPECT_FALSE(FleetModel::FromTraceCsv(path).ok());
  // Availability above 1.
  write((std::string(header) + "0,10,1e6,1e6,0.01,1.5,\n").c_str());
  EXPECT_FALSE(FleetModel::FromTraceCsv(path).ok());
  // Duplicate client id.
  write((std::string(header) + "0,10,1e6,1e6,0.01,1,\n0,10,1e6,1e6,0.01,1,\n")
            .c_str());
  EXPECT_FALSE(FleetModel::FromTraceCsv(path).ok());
  // Client id out of range.
  write((std::string(header) + "7,10,1e6,1e6,0.01,1,\n").c_str());
  EXPECT_FALSE(FleetModel::FromTraceCsv(path).ok());
  // Garbage trace characters.
  write((std::string(header) + "0,10,1e6,1e6,0.01,1,10x1\n").c_str());
  EXPECT_FALSE(FleetModel::FromTraceCsv(path).ok());
  // Non-numeric client id must not silently parse as 0.
  write((std::string(header) + "c0,10,1e6,1e6,0.01,1,\n").c_str());
  EXPECT_FALSE(FleetModel::FromTraceCsv(path).ok());
  // Non-numeric latency must not silently parse as 0.
  write((std::string(header) + "0,10,1e6,1e6,abc,1,\n").c_str());
  EXPECT_FALSE(FleetModel::FromTraceCsv(path).ok());
  // Trailing junk after a numeric field is rejected too.
  write((std::string(header) + "0,10abc,1e6,1e6,0.01,1,\n").c_str());
  EXPECT_FALSE(FleetModel::FromTraceCsv(path).ok());
  // Reordered columns must be rejected, not silently mis-assigned.
  write(
      "client,availability,steps_per_second,upload_bytes_per_second,"
      "download_bytes_per_second,latency_seconds,trace\n"
      "0,0.5,10,1e6,1e6,0.01,\n");
  EXPECT_FALSE(FleetModel::FromTraceCsv(path).ok());
  // Missing file.
  EXPECT_FALSE(FleetModel::FromTraceCsv(path + ".nope").ok());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace fedadmm
