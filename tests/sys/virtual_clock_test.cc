#include "sys/virtual_clock.h"

#include <gtest/gtest.h>

namespace fedadmm {
namespace {

ClientSystemProfile MidRangeProfile() {
  ClientSystemProfile p;
  p.device.steps_per_second = 100.0;
  p.network.upload_bytes_per_second = 1.0e6;
  p.network.download_bytes_per_second = 2.0e6;
  p.network.latency_seconds = 0.1;
  return p;
}

TEST(ClientTimingTest, PhasesAddUp) {
  // 200 steps at 100/s = 2s; 1MB up at 1MB/s + 0.1s latency = 1.1s;
  // 2MB down at 2MB/s + 0.1s latency = 1.1s.
  const ClientTiming t = ComputeClientTiming(
      MidRangeProfile(), /*steps_run=*/200, /*upload_bytes=*/1000000,
      /*download_bytes=*/2000000);
  EXPECT_DOUBLE_EQ(t.compute_seconds, 2.0);
  EXPECT_DOUBLE_EQ(t.upload_seconds, 1.1);
  EXPECT_DOUBLE_EQ(t.download_seconds, 1.1);
  EXPECT_DOUBLE_EQ(t.TotalSeconds(), 4.2);
}

TEST(ClientTimingTest, ZeroBytesSkipsLatency) {
  // FedPD non-communication round: nothing transferred, no latency paid.
  const ClientTiming t =
      ComputeClientTiming(MidRangeProfile(), 100, /*upload_bytes=*/0,
                          /*download_bytes=*/0);
  EXPECT_DOUBLE_EQ(t.upload_seconds, 0.0);
  EXPECT_DOUBLE_EQ(t.download_seconds, 0.0);
  EXPECT_DOUBLE_EQ(t.TotalSeconds(), 1.0);
}

TEST(ClientTimingTest, SlowerDeviceTakesLonger) {
  ClientSystemProfile slow = MidRangeProfile();
  slow.device.steps_per_second = 10.0;
  const ClientTiming fast =
      ComputeClientTiming(MidRangeProfile(), 100, 1000, 1000);
  const ClientTiming straggler = ComputeClientTiming(slow, 100, 1000, 1000);
  EXPECT_GT(straggler.TotalSeconds(), fast.TotalSeconds());
}

TEST(CriticalPathTest, SlowestClientDominates) {
  ClientTiming a;
  a.compute_seconds = 1.0;
  ClientTiming b;
  b.compute_seconds = 2.0;
  b.upload_seconds = 0.5;
  EXPECT_DOUBLE_EQ(CriticalPathSeconds({a, b}), 2.5);
  EXPECT_DOUBLE_EQ(CriticalPathSeconds({}), 0.0);
}

TEST(VirtualClockTest, AdvancesMonotonically) {
  VirtualClock clock;
  EXPECT_DOUBLE_EQ(clock.now(), 0.0);
  clock.Advance(1.5);
  clock.Advance(0.0);
  clock.Advance(2.5);
  EXPECT_DOUBLE_EQ(clock.now(), 4.0);
}

}  // namespace
}  // namespace fedadmm
