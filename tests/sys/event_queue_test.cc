// EventQueue: deterministic (time, sequence) ordering, and the
// MakeClientCompletionEvent builder mapping ComputeClientTiming + the
// straggler admission predicate onto absolute event times.

#include "sys/event_queue.h"

#include <gtest/gtest.h>

#include <vector>

namespace fedadmm {
namespace {

ClientCompletionEvent Event(double time, int64_t sequence, int client) {
  ClientCompletionEvent e;
  e.time = time;
  e.sequence = sequence;
  e.client_id = client;
  return e;
}

TEST(EventQueueTest, PopsInTimeOrderRegardlessOfPushOrder) {
  EventQueue queue;
  queue.Push(Event(3.0, 0, 10));
  queue.Push(Event(1.0, 1, 11));
  queue.Push(Event(2.0, 2, 12));
  EXPECT_EQ(queue.size(), 3);
  EXPECT_EQ(queue.Pop().client_id, 11);
  EXPECT_EQ(queue.Pop().client_id, 12);
  EXPECT_EQ(queue.Pop().client_id, 10);
  EXPECT_TRUE(queue.empty());
}

TEST(EventQueueTest, EqualTimesBreakTiesByDispatchSequence) {
  EventQueue queue;
  queue.Push(Event(5.0, 7, 1));
  queue.Push(Event(5.0, 2, 2));
  queue.Push(Event(5.0, 4, 3));
  EXPECT_EQ(queue.Pop().sequence, 2);
  EXPECT_EQ(queue.Pop().sequence, 4);
  EXPECT_EQ(queue.Pop().sequence, 7);
}

TEST(EventQueueTest, PeekDoesNotRemove) {
  EventQueue queue;
  queue.Push(Event(2.0, 0, 5));
  queue.Push(Event(1.0, 1, 6));
  EXPECT_EQ(queue.Peek().client_id, 6);
  EXPECT_EQ(queue.size(), 2);
  EXPECT_EQ(queue.Pop().client_id, 6);
}

ClientSystemProfile Profile(double steps_per_second, double up_bps,
                            double down_bps, double latency) {
  ClientSystemProfile p;
  p.device.steps_per_second = steps_per_second;
  p.network.upload_bytes_per_second = up_bps;
  p.network.download_bytes_per_second = down_bps;
  p.network.latency_seconds = latency;
  return p;
}

UpdateMessage Message(int client, int steps, int64_t payload_floats) {
  UpdateMessage msg;
  msg.client_id = client;
  msg.steps_run = steps;
  msg.delta.assign(static_cast<size_t>(payload_floats), 0.5f);
  return msg;
}

TEST(EventQueueTest, BuilderTimesEventOffComputeClientTiming) {
  // 100 floats = 400 bytes each way at 400 B/s, zero latency: 1 s down,
  // 1 s up; 50 steps at 100 steps/s: 0.5 s compute.
  const ClientSystemProfile profile = Profile(100.0, 400.0, 400.0, 0.0);
  WaitForAllPolicy policy;
  const ClientCompletionEvent event = MakeClientCompletionEvent(
      profile, policy, /*dispatch_seconds=*/10.0, /*download_bytes=*/400,
      Message(3, 50, 100), /*wave=*/4, /*theta_version=*/2, /*sequence=*/9);
  EXPECT_EQ(event.client_id, 3);
  EXPECT_EQ(event.wave, 4);
  EXPECT_EQ(event.theta_version, 2);
  EXPECT_EQ(event.sequence, 9);
  EXPECT_DOUBLE_EQ(event.timing.TotalSeconds(), 2.5);
  EXPECT_EQ(event.decision.fate, ClientFate::kAdmitted);
  EXPECT_DOUBLE_EQ(event.time, 12.5);
}

TEST(EventQueueTest, BuilderAppliesPolicyAsAdmissionPredicate) {
  const ClientSystemProfile profile = Profile(100.0, 400.0, 400.0, 0.0);
  DeadlineDropPolicy policy(/*deadline_seconds=*/1.0);
  const ClientCompletionEvent event = MakeClientCompletionEvent(
      profile, policy, /*dispatch_seconds=*/2.0, /*download_bytes=*/400,
      Message(0, 50, 100), 0, 0, 0);
  // Total 2.5 s > 1 s deadline: the server stops tracking at dispatch +
  // deadline, and the download (1 s needed, 1 s available) counts as full.
  EXPECT_EQ(event.decision.fate, ClientFate::kDropped);
  EXPECT_DOUBLE_EQ(event.time, 3.0);
  EXPECT_DOUBLE_EQ(event.decision.download_fraction, 1.0);
}

TEST(EventQueueTest, BuilderReportsPartialDownloadOfDroppedClient) {
  // Download alone takes 10 s; a 2 s deadline sees 20% of the broadcast.
  const ClientSystemProfile profile = Profile(100.0, 400.0, 40.0, 0.0);
  DeadlineDropPolicy policy(/*deadline_seconds=*/2.0);
  const ClientCompletionEvent event = MakeClientCompletionEvent(
      profile, policy, 0.0, /*download_bytes=*/400, Message(0, 50, 100), 0,
      0, 0);
  EXPECT_EQ(event.decision.fate, ClientFate::kDropped);
  EXPECT_DOUBLE_EQ(event.decision.download_fraction, 0.2);
}

}  // namespace
}  // namespace fedadmm
