// BufferPool: pin/unpin residency, second-chance eviction order, dirty
// write-back hand-off, and the overflow-then-trim contract that keeps a
// cohort larger than the pool from deadlocking.

#include <gtest/gtest.h>

#include <cstdint>
#include <span>
#include <vector>

#include "state/buffer_pool.h"

namespace fedadmm {
namespace {

constexpr int64_t kFrameFloats = 4;

void Fill(BufferPool::Frame* frame, float value) {
  for (int64_t i = 0; i < kFrameFloats; ++i) {
    frame->data[static_cast<size_t>(i)] = value;
  }
}

TEST(BufferPoolTest, HitMissAndResidency) {
  BufferPool pool(/*capacity_frames=*/2, kFrameFloats, /*write_back=*/nullptr);
  bool hit = true;
  BufferPool::Frame* a = pool.Pin(1, &hit);
  EXPECT_FALSE(hit);
  Fill(a, 1.0f);
  pool.Unpin(1, /*dirty=*/false);

  BufferPool::Frame* again = pool.Pin(1, &hit);
  EXPECT_TRUE(hit);
  EXPECT_EQ(again, a);
  EXPECT_EQ(again->data[0], 1.0f);
  pool.Unpin(1, false);

  EXPECT_EQ(pool.hits(), 1);
  EXPECT_EQ(pool.misses(), 1);
  EXPECT_EQ(pool.resident_frames(), 1);
  EXPECT_EQ(pool.resident_bytes(),
            static_cast<int64_t>(kFrameFloats * sizeof(float)));
}

TEST(BufferPoolTest, PinIsIdempotentOnPinnedKey) {
  BufferPool pool(2, kFrameFloats, nullptr);
  bool hit = false;
  BufferPool::Frame* a = pool.Pin(7, &hit);
  BufferPool::Frame* b = pool.Pin(7, &hit);
  EXPECT_TRUE(hit);
  EXPECT_EQ(a, b);
  EXPECT_TRUE(a->pinned);
  pool.Unpin(7, false);
  EXPECT_FALSE(a->pinned);
}

TEST(BufferPoolTest, SecondChanceSavesReferencedFrame) {
  BufferPool pool(2, kFrameFloats, nullptr);
  bool hit = false;
  pool.Pin(1, &hit);
  pool.Unpin(1, false);
  pool.Pin(2, &hit);
  pool.Unpin(2, false);
  // Both reference bits are set (insertion references): the first victim
  // search clears them and recycles key 1's frame in hand order.
  pool.Pin(3, &hit);
  pool.Unpin(3, false);
  EXPECT_EQ(pool.Find(1), nullptr);
  EXPECT_EQ(pool.evictions(), 1);

  // Now key 3 (in key 1's old frame, the hand's next candidate) is
  // referenced and key 2 is cold: the clock must pass over key 3 —
  // clearing its bit, the second chance — and evict cold key 2.
  pool.Pin(4, &hit);
  pool.Unpin(4, false);
  EXPECT_NE(pool.Find(3), nullptr);
  EXPECT_EQ(pool.Find(2), nullptr);
  EXPECT_EQ(pool.evictions(), 2);
}

TEST(BufferPoolTest, DirtyEvictionHandsSlabToWriteBack) {
  std::vector<uint64_t> written_keys;
  std::vector<float> written_first;
  BufferPool pool(1, kFrameFloats,
                  [&](uint64_t key, std::span<const float> data) {
                    written_keys.push_back(key);
                    written_first.push_back(data[0]);
                  });
  bool hit = false;
  BufferPool::Frame* a = pool.Pin(10, &hit);
  Fill(a, 3.5f);
  pool.Unpin(10, /*dirty=*/true);

  // Clean frame for another key forces eviction of dirty key 10.
  pool.Pin(11, &hit);
  pool.Unpin(11, /*dirty=*/false);
  pool.Pin(12, &hit);
  pool.Unpin(12, false);

  ASSERT_EQ(written_keys.size(), 1u);
  EXPECT_EQ(written_keys[0], 10u);
  EXPECT_EQ(written_first[0], 3.5f);
  EXPECT_EQ(pool.write_backs(), 1);
  // Clean key 11's eviction produced no second write-back.
  EXPECT_EQ(pool.evictions(), 2);
}

TEST(BufferPoolTest, ExplicitEvictRespectsPins) {
  int write_backs = 0;
  BufferPool pool(2, kFrameFloats,
                  [&](uint64_t, std::span<const float>) { ++write_backs; });
  bool hit = false;
  pool.Pin(5, &hit);
  pool.Evict(5);  // Pinned: must be a no-op.
  EXPECT_NE(pool.Find(5), nullptr);
  pool.Unpin(5, /*dirty=*/true);
  pool.Evict(5);
  EXPECT_EQ(pool.Find(5), nullptr);
  EXPECT_EQ(write_backs, 1);
}

TEST(BufferPoolTest, OverflowPinsNeverFailAndTrimBack) {
  BufferPool pool(2, kFrameFloats, nullptr);
  bool hit = false;
  // Pin 5 keys at once against a 2-frame pool: 3 overflow frames.
  for (uint64_t key = 0; key < 5; ++key) {
    ASSERT_NE(pool.Pin(key, &hit), nullptr);
  }
  EXPECT_EQ(pool.resident_frames(), 5);
  EXPECT_GT(pool.resident_bytes(), pool.capacity_frames() * pool.frame_bytes());

  // Releasing the pressure trims residency back to capacity.
  for (uint64_t key = 0; key < 5; ++key) {
    pool.Unpin(key, false);
  }
  EXPECT_EQ(pool.resident_frames(), pool.capacity_frames());
  EXPECT_EQ(pool.resident_bytes(),
            pool.capacity_frames() * pool.frame_bytes());
}

TEST(BufferPoolTest, AdmitIsUnpinnedAndEvictable) {
  BufferPool pool(1, kFrameFloats, nullptr);
  bool hit = false;
  BufferPool::Frame* a = pool.Admit(1, &hit);
  EXPECT_FALSE(hit);
  EXPECT_FALSE(a->pinned);

  // Admitting a second key into a 1-frame pool evicts the first — an
  // admitted frame never holds a pin.
  pool.Admit(2, &hit);
  EXPECT_EQ(pool.Find(1), nullptr);
  EXPECT_EQ(pool.resident_frames(), 1);

  // Admit on a resident key is a hit (the prefetch-already-hot case).
  pool.Admit(2, &hit);
  EXPECT_TRUE(hit);
}

TEST(BufferPoolTest, ClearDropsFramesAndCounters) {
  int write_backs = 0;
  BufferPool pool(2, kFrameFloats,
                  [&](uint64_t, std::span<const float>) { ++write_backs; });
  bool hit = false;
  pool.Pin(1, &hit);
  pool.Unpin(1, /*dirty=*/true);
  pool.Clear();
  EXPECT_EQ(pool.resident_frames(), 0);
  EXPECT_EQ(pool.hits(), 0);
  EXPECT_EQ(pool.misses(), 0);
  EXPECT_EQ(write_backs, 0);  // Configure-time wipe: no write-back.
  EXPECT_EQ(pool.Find(1), nullptr);
}

}  // namespace
}  // namespace fedadmm
