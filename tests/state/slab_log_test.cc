// SlabLog: CRC-framed append/read round-trips, torn-tail recovery (the
// SIGKILL-mid-append case), corrupt-record rejection, and the
// meta..commit group scan the checkpoint layer builds on.

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "state/slab_log.h"
#include "util/file_io.h"

namespace fedadmm {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + name;
}

std::vector<float> Ramp(int n, float base) {
  std::vector<float> v(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) v[static_cast<size_t>(i)] = base + i;
  return v;
}

TEST(SlabLogTest, AppendReadRoundTrip) {
  const std::string path = TempPath("slab_roundtrip.log");
  auto log = SlabLog::Open(path, /*truncate=*/true).ValueOrDie();

  const std::vector<float> slab = Ramp(7, 0.5f);
  const int64_t offset =
      log->AppendFloats(SlabLog::RecordType::kSlab, 3, 1, slab)
          .ValueOrDie();

  SlabLog::Record record;
  ASSERT_TRUE(log->ReadAt(offset, &record).ok());
  EXPECT_EQ(record.type, SlabLog::RecordType::kSlab);
  EXPECT_EQ(record.client, 3);
  EXPECT_EQ(record.slot, 1);
  EXPECT_EQ(record.payload.size(), slab.size() * sizeof(float));

  std::vector<float> decoded(slab.size());
  ASSERT_TRUE(log->ReadFloatsAt(offset, decoded).ok());
  EXPECT_EQ(decoded, slab);
}

TEST(SlabLogTest, ScanVisitsRecordsInFileOrder) {
  const std::string path = TempPath("slab_scan.log");
  auto log = SlabLog::Open(path, /*truncate=*/true).ValueOrDie();
  ASSERT_TRUE(
      log->Append(SlabLog::RecordType::kMeta, 0, 0, 42, {}).ok());
  ASSERT_TRUE(
      log->AppendFloats(SlabLog::RecordType::kSlab, 1, 0, Ramp(3, 1.0f))
          .ok());
  ASSERT_TRUE(
      log->Append(SlabLog::RecordType::kCommit, 0, 0, 42, {}).ok());

  std::vector<SlabLog::RecordType> types;
  std::vector<int64_t> values;
  const int64_t end = log->Scan([&](const SlabLog::Record& r) {
                           types.push_back(r.type);
                           values.push_back(r.value);
                         })
                          .ValueOrDie();
  EXPECT_EQ(end, log->end_offset());
  ASSERT_EQ(types.size(), 3u);
  EXPECT_EQ(types[0], SlabLog::RecordType::kMeta);
  EXPECT_EQ(types[1], SlabLog::RecordType::kSlab);
  EXPECT_EQ(types[2], SlabLog::RecordType::kCommit);
  EXPECT_EQ(values[0], 42);
  EXPECT_EQ(values[2], 42);
}

TEST(SlabLogTest, TornTailIsCutOnReopen) {
  const std::string path = TempPath("slab_torn.log");
  int64_t intact_end = 0;
  {
    auto log = SlabLog::Open(path, /*truncate=*/true).ValueOrDie();
    ASSERT_TRUE(
        log->AppendFloats(SlabLog::RecordType::kSlab, 0, 0, Ramp(5, 2.0f))
            .ok());
    intact_end = log->end_offset();
    ASSERT_TRUE(log->Sync().ok());
  }
  // Simulate a SIGKILL mid-append: garbage half-record past the tail.
  {
    std::FILE* f = std::fopen(path.c_str(), "ab");
    ASSERT_NE(f, nullptr);
    const char garbage[] = "SLBG\x01torn-half-record";
    std::fwrite(garbage, 1, sizeof(garbage), f);
    std::fclose(f);
  }
  auto reopened = SlabLog::Open(path, /*truncate=*/false).ValueOrDie();
  // The valid prefix survives; the torn tail is gone and appends resume.
  EXPECT_EQ(reopened->end_offset(), intact_end);
  int visited = 0;
  ASSERT_TRUE(reopened->Scan([&](const SlabLog::Record&) { ++visited; }).ok());
  EXPECT_EQ(visited, 1);
  ASSERT_TRUE(
      reopened->AppendFloats(SlabLog::RecordType::kSlab, 1, 0, Ramp(5, 3.0f))
          .ok());
  EXPECT_GT(reopened->end_offset(), intact_end);
}

TEST(SlabLogTest, CorruptPayloadStopsScanAndFailsReadAt) {
  const std::string path = TempPath("slab_corrupt.log");
  int64_t first_end = 0;
  int64_t second_offset = 0;
  {
    auto log = SlabLog::Open(path, /*truncate=*/true).ValueOrDie();
    ASSERT_TRUE(
        log->AppendFloats(SlabLog::RecordType::kSlab, 0, 0, Ramp(4, 1.0f))
            .ok());
    first_end = log->end_offset();
    second_offset =
        log->AppendFloats(SlabLog::RecordType::kSlab, 1, 0, Ramp(4, 9.0f))
            .ValueOrDie();
    ASSERT_TRUE(log->Sync().ok());
  }
  // Flip one payload byte of the second record (its last byte on disk).
  {
    std::FILE* f = std::fopen(path.c_str(), "rb+");
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(std::fseek(f, -1, SEEK_END), 0);
    const int c = std::fgetc(f);
    ASSERT_EQ(std::fseek(f, -1, SEEK_END), 0);
    std::fputc(c ^ 0xFF, f);
    std::fclose(f);
  }
  auto log = SlabLog::Open(path, /*truncate=*/false).ValueOrDie();
  // Scan keeps the valid prefix only — the corrupt record is dropped, so
  // the reopened log resumes right after record one.
  EXPECT_EQ(log->end_offset(), first_end);
  std::vector<float> decoded(4);
  EXPECT_FALSE(log->ReadFloatsAt(second_offset, decoded).ok());
}

TEST(SlabLogTest, CorruptHeaderRejectsRecord) {
  const std::string path = TempPath("slab_header.log");
  int64_t offset = 0;
  {
    auto log = SlabLog::Open(path, /*truncate=*/true).ValueOrDie();
    offset =
        log->AppendFloats(SlabLog::RecordType::kSlab, 2, 0, Ramp(4, 1.0f))
            .ValueOrDie();
    ASSERT_TRUE(log->Sync().ok());
  }
  // Flip a client-id byte inside the header: the header CRC must catch it.
  {
    std::FILE* f = std::fopen(path.c_str(), "rb+");
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(std::fseek(f, static_cast<long>(offset) + 5, SEEK_SET), 0);
    const int c = std::fgetc(f);
    ASSERT_EQ(std::fseek(f, static_cast<long>(offset) + 5, SEEK_SET), 0);
    std::fputc(c ^ 0x01, f);
    std::fclose(f);
  }
  auto log = SlabLog::Open(path, /*truncate=*/false).ValueOrDie();
  EXPECT_EQ(log->end_offset(), 0);
  SlabLog::Record record;
  EXPECT_FALSE(log->ReadAt(offset, &record).ok());
}

TEST(ByteCodecTest, WriterReaderRoundTrip) {
  ByteWriter writer;
  writer.U8(7);
  writer.U32(123456u);
  writer.I64(-42);
  writer.F64(3.5);
  writer.String("fedadmm");
  writer.Floats(std::vector<float>{1.0f, -2.0f, 0.25f});
  const std::string blob = writer.Take();

  ByteReader reader(blob);
  EXPECT_EQ(reader.U8().ValueOrDie(), 7);
  EXPECT_EQ(reader.U32().ValueOrDie(), 123456u);
  EXPECT_EQ(reader.I64().ValueOrDie(), -42);
  EXPECT_EQ(reader.F64().ValueOrDie(), 3.5);
  EXPECT_EQ(reader.String().ValueOrDie(), "fedadmm");
  EXPECT_EQ(reader.Floats().ValueOrDie(),
            (std::vector<float>{1.0f, -2.0f, 0.25f}));
  EXPECT_TRUE(reader.empty());
  // Exhausted buffer: further reads are IoError, not garbage.
  EXPECT_FALSE(reader.U8().ok());
}

}  // namespace
}  // namespace fedadmm
