// Store-backend equivalence property: `lazy`, `quantized:32` (identity
// codec, lossless) and `tiered` (out-of-core, raw fp32 slabs — here with a
// pool of just 3 frames, so nearly every round churns through the slab
// log) replay bitwise identically to `dense` — the historical layout — on
// seeded FedADMM + FedPD + SCAFFOLD runs, across thread counts; and `lazy`
// resident bytes track the touched population.

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <string>
#include <vector>

#include "core/fedadmm.h"
#include "fl/algorithms/fedpd.h"
#include "fl/algorithms/scaffold.h"
#include "fl/quadratic_problem.h"
#include "fl/selection.h"
#include "fl/simulation.h"

namespace fedadmm {
namespace {

constexpr int kClients = 12;
constexpr int kDim = 9;
constexpr int kRounds = 14;

QuadraticSpec Spec() {
  QuadraticSpec spec;
  spec.num_clients = kClients;
  spec.dim = kDim;
  spec.heterogeneity = 1.3;
  spec.seed = 55;
  return spec;
}

std::unique_ptr<FederatedAlgorithm> MakeAlgo(const std::string& name) {
  LocalTrainSpec local;
  local.learning_rate = 0.05f;
  local.batch_size = 3;
  local.max_epochs = 2;
  if (name == "FedADMM") {
    FedAdmmOptions options;
    options.local = local;
    options.rho = StepSchedule(0.4);
    options.eta_active_fraction = true;
    return std::make_unique<FedAdmm>(options);
  }
  if (name == "FedPD") {
    return std::make_unique<FedPd>(local, 0.5f, 0.6, /*seed=*/7);
  }
  return std::make_unique<Scaffold>(local);
}

struct RunOutput {
  std::vector<float> theta;
  History history;
};

RunOutput RunWith(const std::string& algo_name,
                  const std::string& state_store, int threads) {
  QuadraticProblem problem(Spec());
  auto algo = MakeAlgo(algo_name);
  std::unique_ptr<ClientSelector> selector;
  if (algo_name == "FedPD") {
    selector = std::make_unique<FullParticipationSelector>(kClients);
  } else {
    selector = std::make_unique<UniformFractionSelector>(kClients, 0.5);
  }
  SimulationConfig config;
  config.max_rounds = kRounds;
  config.seed = 21;
  config.num_threads = threads;
  config.state_store = state_store;
  Simulation sim(&problem, algo.get(), selector.get(), config);
  RunOutput out;
  out.history = std::move(sim.Run()).ValueOrDie();
  out.theta = sim.theta();
  return out;
}

class BackendEquivalenceSweep
    : public ::testing::TestWithParam<std::string> {};

TEST_P(BackendEquivalenceSweep, LazyAndLosslessQuantizedMatchDenseBitwise) {
  const std::string algo = GetParam();
  const RunOutput dense = RunWith(algo, "dense", /*threads=*/1);
  // The tiered pool holds 3 frames against 12 clients × up-to-2 slots:
  // constant eviction/fault traffic, yet bitwise replay must hold.
  const std::string tiered =
      "tiered:3f:" + ::testing::TempDir() + "store_eq_" + algo + ".slab";
  for (const std::string& backend : {std::string("lazy"),
                                     std::string("quantized:32"), tiered}) {
    for (int threads : {1, 4}) {
      const RunOutput run = RunWith(algo, backend, threads);
      EXPECT_EQ(run.theta, dense.theta)
          << algo << " " << backend << " threads=" << threads;
      ASSERT_EQ(run.history.size(), dense.history.size());
      for (int r = 0; r < run.history.size(); ++r) {
        const RoundRecord& a = run.history.records()[static_cast<size_t>(r)];
        const RoundRecord& b =
            dense.history.records()[static_cast<size_t>(r)];
        EXPECT_EQ(a.train_loss, b.train_loss) << backend << " round " << r;
        EXPECT_EQ(a.test_accuracy, b.test_accuracy);
        EXPECT_EQ(a.upload_bytes, b.upload_bytes);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Algorithms, BackendEquivalenceSweep,
                         ::testing::Values("FedADMM", "FedPD", "SCAFFOLD"));

// A fixed-set selector so the touched population is known exactly.
class FixedSetSelector : public ClientSelector {
 public:
  FixedSetSelector(int num_clients, std::vector<int> set)
      : num_clients_(num_clients), set_(std::move(set)) {}
  std::vector<int> Select(int round, Rng* rng) override {
    (void)round;
    (void)rng;
    return set_;
  }
  int num_clients() const override { return num_clients_; }
  std::string name() const override { return "fixed-set"; }

 private:
  int num_clients_;
  std::vector<int> set_;
};

TEST(StateBytesResidentTest, LazyEqualsTouchedClientsTimesSlotBytes) {
  QuadraticProblem problem(Spec());
  FedAdmmOptions options;
  options.local.learning_rate = 0.05f;
  options.local.max_epochs = 2;
  options.rho = StepSchedule(0.4);
  options.eta_active_fraction = true;
  FedAdmm algo(options);
  FixedSetSelector selector(kClients, {2, 5, 7});
  SimulationConfig config;
  config.max_rounds = 6;
  config.seed = 3;
  config.state_store = "lazy";
  Simulation sim(&problem, &algo, &selector, config);
  const History history = std::move(sim.Run()).ValueOrDie();

  // 3 touched clients × 2 slots (w_i, y_i) × d floats.
  const int64_t expected = 3 * 2 * kDim * 4;
  EXPECT_EQ(algo.StateBytesResident(), expected);
  EXPECT_EQ(algo.state_store().num_touched_clients(), 3);
  // The cost surface reaches the per-round records (and the CSV schema).
  for (const RoundRecord& r : history.records()) {
    EXPECT_EQ(r.state_bytes_resident, expected);
  }
}

TEST(StateBytesResidentTest, DenseReportsFullArenaFromRoundZero) {
  QuadraticProblem problem(Spec());
  FedAdmmOptions options;
  options.local.max_epochs = 1;
  options.rho = StepSchedule(0.4);
  options.eta_active_fraction = true;
  FedAdmm algo(options);
  FixedSetSelector selector(kClients, {0});
  SimulationConfig config;
  config.max_rounds = 2;
  config.seed = 3;
  // Default (empty) spec → FedAdmmOptions default "dense".
  Simulation sim(&problem, &algo, &selector, config);
  const History history = std::move(sim.Run()).ValueOrDie();
  const int64_t dense_bytes = static_cast<int64_t>(kClients) * 2 * kDim * 4;
  for (const RoundRecord& r : history.records()) {
    EXPECT_EQ(r.state_bytes_resident, dense_bytes);
  }
}

TEST(StateBytesResidentTest, LossyQuantizedColdStateIsSmallAndRunsClose) {
  // quantized:8 is lossy, so no bitwise claim — but the run must stay
  // finite and the cold footprint must be well under the dense arena.
  QuadraticProblem problem(Spec());
  FedAdmmOptions options;
  options.local.learning_rate = 0.05f;
  options.local.max_epochs = 2;
  options.rho = StepSchedule(0.4);
  options.eta_active_fraction = true;
  FedAdmm algo(options);
  UniformFractionSelector selector(kClients, 0.5);
  SimulationConfig config;
  config.max_rounds = 10;
  config.seed = 21;
  config.state_store = "quantized:8";
  Simulation sim(&problem, &algo, &selector, config);
  const History history = std::move(sim.Run()).ValueOrDie();
  EXPECT_TRUE(std::isfinite(history.records().back().train_loss));
  // At this toy dim the per-payload header dominates; the asymptotic ~4x
  // shrink is demonstrated at scale by bench_state_scale.
  const int64_t dense_bytes = static_cast<int64_t>(kClients) * 2 * kDim * 4;
  EXPECT_LT(history.records().back().state_bytes_resident, dense_bytes);
  EXPECT_GT(history.records().back().state_bytes_resident, 0);
}

TEST(StateStoreConfigTest, BadSpecFailsFastWithStatus) {
  QuadraticProblem problem(Spec());
  FedAdmmOptions options;
  options.eta_active_fraction = true;
  FedAdmm algo(options);
  UniformFractionSelector selector(kClients, 0.5);
  SimulationConfig config;
  config.max_rounds = 2;
  config.state_store = "zstd";
  Simulation sim(&problem, &algo, &selector, config);
  const auto result = sim.Run();
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("zstd"), std::string::npos);
}

TEST(StateStoreConfigTest, BadAlgorithmDefaultSpecAlsoFailsFast) {
  // The options-level path: SimulationConfig::state_store empty, the
  // algorithm's own default bad — still a Status, not a CHECK mid-Setup.
  QuadraticProblem problem(Spec());
  FedAdmmOptions options;
  options.eta_active_fraction = true;
  options.state_store = "quantized:20";
  FedAdmm algo(options);
  UniformFractionSelector selector(kClients, 0.5);
  SimulationConfig config;
  config.max_rounds = 2;
  Simulation sim(&problem, &algo, &selector, config);
  const auto result = sim.Run();
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("20"), std::string::npos);
}

}  // namespace
}  // namespace fedadmm
