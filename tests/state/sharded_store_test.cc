// ShardedStateStore: client-id partition correctness, per-shard resident
// accounting, global ForEachTouched order, the Configure clamp for tiny
// fleets, and the "sharded:<W>:<inner>" spec grammar.

#include "state/sharded_store.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "state/client_state_store.h"

namespace fedadmm {
namespace {

std::vector<StateSlotSpec> TwoSlots(int64_t dim) {
  std::vector<StateSlotSpec> slots(2);
  slots[0].dim = dim;
  slots[1].dim = dim;
  slots[1].init.assign(static_cast<size_t>(dim), 1.5f);
  return slots;
}

TEST(ShardedStoreTest, RoutesClientsByModuloAndIsolatesWrites) {
  ShardedStateStore store(/*num_shards=*/3, "dense");
  store.Configure(/*num_clients=*/10, TwoSlots(4));
  EXPECT_EQ(store.num_clients(), 10);
  EXPECT_EQ(store.num_slots(), 2);
  EXPECT_EQ(store.num_active_shards(), 3);
  // Tag every client with its own value; reads must come back per-client.
  for (int c = 0; c < 10; ++c) {
    std::span<float> w = store.MutableView(c, 0);
    ASSERT_EQ(w.size(), 4u);
    for (float& v : w) v = static_cast<float>(c) + 0.25f;
    store.Release(c);
  }
  for (int c = 0; c < 10; ++c) {
    const std::span<const float> r = store.View(c, 0);
    ASSERT_EQ(r.size(), 4u);
    EXPECT_EQ(r[0], static_cast<float>(c) + 0.25f) << "client " << c;
    // Slot 1 untouched: shared initial value.
    EXPECT_EQ(store.View(c, 1)[0], 1.5f);
  }
  EXPECT_EQ(store.num_touched_clients(), 10);
}

TEST(ShardedStoreTest, BytesResidentSumsShardsAndExposesPerShardSlice) {
  ShardedStateStore store(/*num_shards=*/4, "lazy");
  store.Configure(/*num_clients=*/16, TwoSlots(8));
  EXPECT_EQ(store.bytes_resident(), 0);
  // Touch only clients of shard 1 (ids ≡ 1 mod 4).
  for (int c = 1; c < 16; c += 4) {
    store.MutableView(c, 0);
    store.Release(c);
  }
  int64_t sum = 0;
  for (int s = 0; s < store.num_active_shards(); ++s) {
    sum += store.bytes_resident_shard(s);
  }
  EXPECT_EQ(store.bytes_resident(), sum);
  EXPECT_GT(store.bytes_resident_shard(1), 0);
  EXPECT_EQ(store.bytes_resident_shard(0), 0);
  EXPECT_EQ(store.bytes_resident_shard(2), 0);
  EXPECT_EQ(store.bytes_resident_shard(3), 0);
  EXPECT_EQ(store.num_touched_clients(), 4);
}

TEST(ShardedStoreTest, ForEachTouchedVisitsGlobalClientSlotOrder) {
  ShardedStateStore store(/*num_shards=*/3, "lazy");
  store.Configure(/*num_clients=*/9, TwoSlots(2));
  // Touch clients across shards in scrambled order.
  for (int c : {7, 2, 5, 0, 8}) {
    store.MutableView(c, 1)[0] = static_cast<float>(c);
    if (c != 5) store.MutableView(c, 0)[0] = static_cast<float>(-c);
    store.Release(c);
  }
  std::vector<std::pair<int, int>> visited;
  std::vector<float> leads;
  store.ForEachTouched([&](int client, int slot, std::span<const float> v) {
    visited.emplace_back(client, slot);
    leads.push_back(v[0]);
  });
  // Global (client, slot) order, regardless of which shard owns whom.
  // Client 5's slot 0 was never materialized, so it is skipped.
  const std::vector<std::pair<int, int>> want = {
      {0, 0}, {0, 1}, {2, 0}, {2, 1}, {5, 1},
      {7, 0}, {7, 1}, {8, 0}, {8, 1}};
  EXPECT_EQ(visited, want);
  EXPECT_EQ(leads[2], -2.0f);  // client 2 slot 0
  EXPECT_EQ(leads[3], 2.0f);   // client 2 slot 1
  EXPECT_EQ(leads[4], 5.0f);   // client 5 slot 1
}

TEST(ShardedStoreTest, ConfigureClampsShardCountToFleetSize) {
  ShardedStateStore store(/*num_shards=*/8, "dense");
  store.Configure(/*num_clients=*/3, TwoSlots(2));
  // Declared W stays 8; Configure instantiates min(W, m) inner stores.
  EXPECT_EQ(store.num_shards(), 8);
  EXPECT_EQ(store.num_active_shards(), 3);
  for (int c = 0; c < 3; ++c) {
    store.MutableView(c, 0)[0] = static_cast<float>(c + 100);
  }
  for (int c = 0; c < 3; ++c) {
    EXPECT_EQ(store.View(c, 0)[0], static_cast<float>(c + 100));
  }
}

TEST(ShardedStoreTest, NameRoundTripsThroughFactory) {
  ShardedStateStore store(/*num_shards=*/4, "quantized:8");
  EXPECT_EQ(store.name(), "sharded:4:quantized:8");
  auto made = MakeClientStateStore(store.name());
  ASSERT_TRUE(made.ok());
  EXPECT_EQ(made.ValueOrDie()->name(), "sharded:4:quantized:8");
}

TEST(ShardedStoreTest, FactoryNormalizesWEqualsOneToInner) {
  auto made = MakeClientStateStore("sharded:1:lazy");
  ASSERT_TRUE(made.ok());
  EXPECT_EQ(made.ValueOrDie()->name(), "lazy");
}

TEST(ShardedStoreTest, FactoryRejectsMalformedSpecs) {
  EXPECT_TRUE(MakeClientStateStore("sharded:").status().IsInvalidArgument());
  EXPECT_TRUE(
      MakeClientStateStore("sharded:2").status().IsInvalidArgument());
  EXPECT_TRUE(
      MakeClientStateStore("sharded:0:dense").status().IsInvalidArgument());
  EXPECT_TRUE(
      MakeClientStateStore("sharded:-2:dense").status().IsInvalidArgument());
  EXPECT_TRUE(
      MakeClientStateStore("sharded:x:dense").status().IsInvalidArgument());
  EXPECT_TRUE(
      MakeClientStateStore("sharded:2:bogus").status().IsInvalidArgument());
  // No nesting: one partition layer only.
  EXPECT_TRUE(MakeClientStateStore("sharded:2:sharded:2:dense")
                  .status()
                  .IsInvalidArgument());
}

TEST(ShardedStoreTest, ConfiguredFactoryWrapsWithEngineShardKnob) {
  // The engine knob wraps the resolved spec...
  auto wrapped = MakeConfiguredClientStateStore(
      /*override_spec=*/"", /*fallback_spec=*/"lazy", /*num_clients=*/12,
      TwoSlots(4), /*num_shards=*/4);
  ASSERT_TRUE(wrapped.ok());
  EXPECT_EQ(wrapped.ValueOrDie()->name(), "sharded:4:lazy");
  EXPECT_EQ(wrapped.ValueOrDie()->num_clients(), 12);
  // ...unless the spec already chose its own sharding (explicit wins)...
  auto explicit_spec = MakeConfiguredClientStateStore(
      "sharded:2:dense", "lazy", 12, TwoSlots(4), /*num_shards=*/8);
  ASSERT_TRUE(explicit_spec.ok());
  EXPECT_EQ(explicit_spec.ValueOrDie()->name(), "sharded:2:dense");
  // ...and W = 1 leaves the spec untouched (bitwise-legacy path).
  auto unsharded = MakeConfiguredClientStateStore("", "dense", 12,
                                                  TwoSlots(4),
                                                  /*num_shards=*/1);
  ASSERT_TRUE(unsharded.ok());
  EXPECT_EQ(unsharded.ValueOrDie()->name(), "dense");
}

TEST(ShardedStoreTest, ShardedViewsMatchUnshardedBackendBitwise) {
  // Storage transparency: the same write/read script against "lazy" and
  // "sharded:3:lazy" must produce identical floats everywhere.
  auto plain = MakeClientStateStore("lazy").ValueOrDie();
  auto sharded = MakeClientStateStore("sharded:3:lazy").ValueOrDie();
  plain->Configure(11, TwoSlots(5));
  sharded->Configure(11, TwoSlots(5));
  for (int c : {10, 3, 6, 0, 9, 1}) {
    for (int s = 0; s < 2; ++s) {
      std::span<float> a = plain->MutableView(c, s);
      std::span<float> b = sharded->MutableView(c, s);
      for (size_t i = 0; i < a.size(); ++i) {
        const float v = static_cast<float>(c * 31 + s * 7) +
                        static_cast<float>(i) * 0.125f;
        a[i] = v;
        b[i] = v;
      }
    }
    plain->Release(c);
    sharded->Release(c);
  }
  for (int c = 0; c < 11; ++c) {
    for (int s = 0; s < 2; ++s) {
      const std::span<const float> a = plain->View(c, s);
      const std::span<const float> b = sharded->View(c, s);
      ASSERT_EQ(a.size(), b.size());
      for (size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i], b[i]) << "client " << c << " slot " << s;
      }
    }
  }
  EXPECT_EQ(plain->bytes_resident(), sharded->bytes_resident());
  EXPECT_EQ(plain->num_touched_clients(), sharded->num_touched_clients());
}

}  // namespace
}  // namespace fedadmm
