// TieredStateStore: store-contract semantics under a tiny pool (faults,
// write-backs, init-value reads), the factory's `tiered:` grammar and its
// error messages, prefetch accounting, and per-shard log segments under
// the `sharded:` wrapper.

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <sys/stat.h>
#include <utility>
#include <vector>

#include "state/client_state_store.h"
#include "state/tiered_store.h"
#include "util/thread_pool.h"

namespace fedadmm {
namespace {

constexpr int kClients = 8;
constexpr int64_t kDim = 6;

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + name;
}

bool FileExists(const std::string& path) {
  struct stat st;
  return ::stat(path.c_str(), &st) == 0;
}

std::vector<StateSlotSpec> TwoSlots() {
  std::vector<StateSlotSpec> slots(2);
  slots[0].dim = kDim;
  slots[1].dim = kDim;
  slots[1].init.assign(static_cast<size_t>(kDim), 0.5f);
  return slots;
}

std::unique_ptr<ClientStateStore> MakeTiered(const std::string& file,
                                             const std::string& frames) {
  auto store =
      MakeClientStateStore("tiered:" + frames + ":" + TempPath(file))
          .ValueOrDie();
  store->Configure(kClients, TwoSlots());
  return store;
}

TEST(TieredStoreTest, NameRoundTripsThroughFactory) {
  const std::string spec = "tiered:2f:" + TempPath("tiered_name.slab");
  auto store = MakeClientStateStore(spec).ValueOrDie();
  EXPECT_EQ(store->name(), spec);
  // The explicit ":dense" suffix parses too and normalizes to short form.
  auto suffixed = MakeClientStateStore(spec + ":dense").ValueOrDie();
  EXPECT_EQ(suffixed->name(), spec);
}

TEST(TieredStoreTest, UntouchedReadsSeeInitWithoutMaterializing) {
  auto store = MakeTiered("tiered_init.slab", "2f");
  const std::span<const float> zeros = store->View(3, 0);
  const std::span<const float> halves = store->View(3, 1);
  ASSERT_EQ(zeros.size(), static_cast<size_t>(kDim));
  EXPECT_EQ(zeros[0], 0.0f);
  EXPECT_EQ(halves[2], 0.5f);
  EXPECT_EQ(store->num_touched_clients(), 0);
  store->Release(3);
}

TEST(TieredStoreTest, ValuesSurviveEvictionChurn) {
  // 2 frames against 8 clients × 2 slots: every write cycle churns the
  // pool through the slab log, yet each slab must read back bitwise.
  auto store = MakeTiered("tiered_churn.slab", "2f");
  for (int c = 0; c < kClients; ++c) {
    for (int s = 0; s < 2; ++s) {
      std::span<float> v = store->MutableView(c, s);
      for (int64_t i = 0; i < kDim; ++i) {
        v[static_cast<size_t>(i)] = static_cast<float>(100 * c + 10 * s) +
                                    static_cast<float>(i) * 0.25f;
      }
    }
    store->Release(c);
  }
  EXPECT_EQ(store->num_touched_clients(), kClients);
  for (int c = 0; c < kClients; ++c) {
    for (int s = 0; s < 2; ++s) {
      const std::span<const float> v = store->View(c, s);
      for (int64_t i = 0; i < kDim; ++i) {
        EXPECT_EQ(v[static_cast<size_t>(i)],
                  static_cast<float>(100 * c + 10 * s) +
                      static_cast<float>(i) * 0.25f)
            << "client " << c << " slot " << s << " elem " << i;
      }
    }
    store->Release(c);
  }
  auto* tiered = static_cast<TieredStateStore*>(store.get());
  EXPECT_GT(tiered->pool_write_backs(), 0);
  EXPECT_GT(tiered->pool_misses(), 0);  // Disk faults, not first touches.
}

TEST(TieredStoreTest, ResidentBytesArePinnedToPoolGeometry) {
  auto store = MakeTiered("tiered_resident.slab", "3f");
  auto* tiered = static_cast<TieredStateStore*>(store.get());
  for (int c = 0; c < kClients; ++c) {
    store->MutableView(c, 0);
    store->MutableView(c, 1);
    store->Release(c);
  }
  // 16 touched slabs, 3 frames: residency is the pool, not the population.
  EXPECT_EQ(store->bytes_resident(),
            tiered->pool_capacity_frames() * tiered->pool_frame_bytes());
  EXPECT_EQ(tiered->pool_capacity_frames(), 3);
}

TEST(TieredStoreTest, ForEachTouchedVisitsInOrderWithCurrentValues) {
  auto store = MakeTiered("tiered_visit.slab", "2f");
  for (const int c : {5, 1, 3}) {
    std::span<float> v = store->MutableView(c, 1);
    v[0] = static_cast<float>(c);
    store->Release(c);
  }
  std::vector<std::pair<int, int>> visited;
  std::vector<float> first;
  store->ForEachTouched(
      [&](int client, int slot, std::span<const float> value) {
        visited.emplace_back(client, slot);
        first.push_back(value[0]);
      });
  // Increasing (client, slot); slot 0 was never touched for these clients.
  ASSERT_EQ(visited.size(), 3u);
  EXPECT_EQ(visited[0], std::make_pair(1, 1));
  EXPECT_EQ(visited[1], std::make_pair(3, 1));
  EXPECT_EQ(visited[2], std::make_pair(5, 1));
  EXPECT_EQ(first[0], 1.0f);
  EXPECT_EQ(first[1], 3.0f);
  EXPECT_EQ(first[2], 5.0f);
}

TEST(TieredStoreTest, PrefetchTurnsWaveMissesIntoHits) {
  auto store = MakeTiered("tiered_prefetch.slab", "4f");
  auto* tiered = static_cast<TieredStateStore*>(store.get());
  // Touch everyone, then churn the cohort {0, 1} out of the pool.
  for (int c = 0; c < kClients; ++c) {
    store->MutableView(c, 0);
    store->MutableView(c, 1);
    store->Release(c);
  }
  ThreadPool pool(2);
  store->PrefetchClients({0, 1}, &pool);
  pool.Wait();
  // Per-slab accounting: 2 clients × 2 cold slabs each.
  EXPECT_EQ(tiered->prefetch_issued(), 4);

  const int64_t misses_before = tiered->pool_misses();
  const int64_t hits_before = tiered->pool_hits();
  store->View(0, 0);
  store->View(0, 1);
  store->Release(0);
  store->View(1, 0);
  store->Release(1);
  EXPECT_EQ(tiered->pool_misses(), misses_before);  // All prefetched.
  EXPECT_EQ(tiered->pool_hits(), hits_before + 3);
  EXPECT_EQ(tiered->prefetch_late(), 0);
}

TEST(TieredStoreTest, LatePrefetchIsCountedNotWrong) {
  auto store = MakeTiered("tiered_late.slab", "2f");
  auto* tiered = static_cast<TieredStateStore*>(store.get());
  for (int c = 0; c < kClients; ++c) {
    store->MutableView(c, 0);
    store->Release(c);
  }
  // Synchronous prefetch (null pool), then churn the cohort back out
  // before "the wave" reads it: the read faults and counts as late.
  store->PrefetchClients({0}, nullptr);
  for (int c = 4; c < kClients; ++c) {
    store->MutableView(c, 0);
    store->Release(c);
  }
  const int64_t late_before = tiered->prefetch_late();
  store->View(0, 0);
  store->Release(0);
  EXPECT_EQ(tiered->prefetch_late(), late_before + 1);
}

TEST(TieredStoreTest, ConfigureWipesLogAndDirectory) {
  auto store = MakeTiered("tiered_reconf.slab", "2f");
  std::span<float> v = store->MutableView(2, 0);
  v[0] = 9.0f;
  store->Release(2);
  store->Configure(kClients, TwoSlots());
  EXPECT_EQ(store->num_touched_clients(), 0);
  EXPECT_EQ(store->View(2, 0)[0], 0.0f);
  store->Release(2);
}

TEST(TieredStoreTest, ShardedTieredOwnsPerShardSegments) {
  const std::string base = TempPath("tiered_shard.slab");
  auto store =
      MakeClientStateStore("sharded:2:tiered:2f:" + base).ValueOrDie();
  std::vector<StateSlotSpec> slots(1);
  slots[0].dim = kDim;
  store->Configure(kClients, std::move(slots));
  for (int c = 0; c < kClients; ++c) {
    std::span<float> v = store->MutableView(c, 0);
    v[0] = static_cast<float>(c);
    store->Release(c);
  }
  // Each worker opened its own log segment; values read back through the
  // partition bitwise.
  EXPECT_TRUE(FileExists(base + ".seg0"));
  EXPECT_TRUE(FileExists(base + ".seg1"));
  for (int c = 0; c < kClients; ++c) {
    EXPECT_EQ(store->View(c, 0)[0], static_cast<float>(c));
    store->Release(c);
  }
}

TEST(TieredStoreTest, DestructorRemovesScratchSegment) {
  const std::string path = TempPath("tiered_cleanup.slab");
  {
    auto store = MakeClientStateStore("tiered:2f:" + path).ValueOrDie();
    std::vector<StateSlotSpec> slots(1);
    slots[0].dim = kDim;
    store->Configure(kClients, std::move(slots));
    store->MutableView(0, 0);
    store->Release(0);
    EXPECT_TRUE(FileExists(path));
  }
  EXPECT_FALSE(FileExists(path));
}

TEST(TieredStoreFactoryTest, CapacityTokenForms) {
  // MiB form: 1 MiB over 6-float (24-byte) frames.
  auto mib = MakeClientStateStore("tiered:1:" + TempPath("cap_mib.slab"))
                 .ValueOrDie();
  std::vector<StateSlotSpec> slots(1);
  slots[0].dim = kDim;
  mib->Configure(kClients, std::move(slots));
  auto* tiered = static_cast<TieredStateStore*>(mib.get());
  EXPECT_EQ(tiered->pool_capacity_frames(),
            (1 << 20) / tiered->pool_frame_bytes());
}

struct BadSpecCase {
  std::string spec;
  std::string needle;  // Must appear in the error message.
};

class TieredBadSpecTest : public ::testing::TestWithParam<BadSpecCase> {};

TEST_P(TieredBadSpecTest, ErrorQuotesSpecAndGrammar) {
  const BadSpecCase& param = GetParam();
  const auto result = MakeClientStateStore(param.spec);
  ASSERT_FALSE(result.ok()) << param.spec;
  const std::string& message = result.status().message();
  // Satellite contract: every InvalidArgument names the offending spec and
  // restates the accepted grammar.
  EXPECT_NE(message.find(param.spec), std::string::npos) << message;
  EXPECT_NE(message.find("tiered:<capacity_mb|<n>f>"), std::string::npos)
      << message;
  EXPECT_NE(message.find(param.needle), std::string::npos) << message;
}

INSTANTIATE_TEST_SUITE_P(
    Grammar, TieredBadSpecTest,
    ::testing::Values(
        BadSpecCase{"tiered:", "capacity"},
        BadSpecCase{"tiered:64", "path"},
        BadSpecCase{"tiered:0:/tmp/x.slab", "capacity"},
        BadSpecCase{"tiered:-3:/tmp/x.slab", "capacity"},
        BadSpecCase{"tiered:8q:/tmp/x.slab", "capacity"},
        BadSpecCase{"tiered:64:", "path"},
        BadSpecCase{"tiered:64:/tmp/x.slab:lazy", "dense"},
        BadSpecCase{"tiered:64:/tmp/x.slab:quantized:8", "dense"}));

}  // namespace
}  // namespace fedadmm
