// The client-state store (src/state): factory specs, backend semantics
// (init-value views, materialize-on-touch, hot/cold quantized lifecycle),
// the bytes_resident cost model, and the distinct-client concurrency
// contract.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <memory>
#include <set>
#include <vector>

#include "comm/quantize.h"
#include "state/client_state_store.h"
#include "state/lazy_store.h"
#include "state/quantized_store.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace fedadmm {
namespace {

constexpr int kClients = 16;
constexpr int64_t kDim = 33;

std::vector<StateSlotSpec> TwoSlots(std::vector<float> init0) {
  std::vector<StateSlotSpec> slots(2);
  slots[0].dim = kDim;
  slots[0].init = std::move(init0);
  slots[1].dim = kDim;  // zero-initialized
  return slots;
}

std::vector<float> Ramp(float base) {
  std::vector<float> v(static_cast<size_t>(kDim));
  for (size_t i = 0; i < v.size(); ++i) {
    v[i] = base + 0.25f * static_cast<float>(i);
  }
  return v;
}

TEST(StateStoreFactoryTest, ParsesKnownSpecsAndRoundTripsNames) {
  for (const std::string& spec : ClientStateStoreExampleSpecs()) {
    auto store = MakeClientStateStore(spec);
    ASSERT_TRUE(store.ok()) << spec;
    EXPECT_EQ(store.ValueOrDie()->name(), spec);
  }
  EXPECT_EQ(MakeClientStateStore("quantized:16").ValueOrDie()->name(),
            "quantized:16");
}

TEST(StateStoreFactoryTest, RejectsUnknownSpecs) {
  for (const std::string& bad :
       {"", "sparse", "quantized", "quantized:", "quantized:0",
        "quantized:17", "quantized:33", "quantized:8x", "dense "}) {
    EXPECT_FALSE(MakeClientStateStore(bad).ok()) << "'" << bad << "'";
  }
}

class StateStoreBackendSweep
    : public ::testing::TestWithParam<std::string> {};

TEST_P(StateStoreBackendSweep, UntouchedClientsReadSlotInitialValues) {
  auto store = MakeClientStateStore(GetParam()).ValueOrDie();
  const std::vector<float> init = Ramp(1.0f);
  store->Configure(kClients, TwoSlots(init));
  for (int c = 0; c < kClients; ++c) {
    const auto w = store->View(c, 0);
    ASSERT_EQ(w.size(), static_cast<size_t>(kDim));
    EXPECT_TRUE(std::equal(w.begin(), w.end(), init.begin(), init.end()));
    for (float v : store->View(c, 1)) EXPECT_EQ(v, 0.0f);
    store->Release(c);
  }
}

TEST_P(StateStoreBackendSweep, MutationsPersistAcrossReleaseLossless) {
  // quantized:32 is the identity codec, so this sweep includes it; lossy
  // bit widths are covered separately with error bounds.
  if (GetParam().rfind("quantized:", 0) == 0 && GetParam() != "quantized:32") {
    GTEST_SKIP();
  }
  auto store = MakeClientStateStore(GetParam()).ValueOrDie();
  store->Configure(kClients, TwoSlots(Ramp(-2.0f)));
  const std::vector<float> wrote = Ramp(7.5f);
  for (int c : {3, 11}) {
    auto view = store->MutableView(c, 1);
    std::copy(wrote.begin(), wrote.end(), view.begin());
    store->Release(c);
  }
  for (int c : {3, 11}) {
    const auto back = store->View(c, 1);
    EXPECT_TRUE(
        std::equal(back.begin(), back.end(), wrote.begin(), wrote.end()));
    store->Release(c);
  }
  // Neighbours stay at the slot initialization.
  for (float v : store->View(4, 1)) EXPECT_EQ(v, 0.0f);
}

TEST_P(StateStoreBackendSweep, ForEachTouchedVisitsExactlyTouchedClients) {
  auto store = MakeClientStateStore(GetParam()).ValueOrDie();
  store->Configure(kClients, TwoSlots(Ramp(0.0f)));
  for (int c : {1, 6, 9}) {
    store->MutableView(c, 0)[0] = 42.0f;
    store->Release(c);
  }
  std::set<int> seen;
  store->ForEachTouched(
      [&](int client, int slot, std::span<const float> value) {
        ASSERT_EQ(value.size(), static_cast<size_t>(kDim));
        if (slot == 0 && value[0] == 42.0f) seen.insert(client);
      });
  if (GetParam() == "dense") {
    // Dense is always fully materialized; the touched writes must still be
    // visible among all m visits.
    EXPECT_EQ(seen, (std::set<int>{1, 6, 9}));
    EXPECT_EQ(store->num_touched_clients(), kClients);
  } else {
    EXPECT_EQ(seen, (std::set<int>{1, 6, 9}));
    EXPECT_EQ(store->num_touched_clients(), 3);
  }
}

TEST_P(StateStoreBackendSweep, ConcurrentDistinctClientTouchesAreSafe) {
  auto store = MakeClientStateStore(GetParam()).ValueOrDie();
  const int clients = 64;
  std::vector<StateSlotSpec> slots(2);
  slots[0].dim = kDim;
  slots[0].init = Ramp(1.0f);
  slots[1].dim = kDim;
  store->Configure(clients, slots);

  ThreadPool pool(8);
  pool.ParallelFor(clients, [&](int c, int worker) {
    (void)worker;
    auto w = store->MutableView(c, 0);
    auto y = store->MutableView(c, 1);
    for (size_t k = 0; k < w.size(); ++k) {
      w[k] += static_cast<float>(c);
      y[k] = static_cast<float>(c) - w[k];
    }
    store->Release(c);
  });

  const std::vector<float> init = Ramp(1.0f);
  for (int c = 0; c < clients; ++c) {
    const auto w = store->View(c, 0);
    const auto y = store->View(c, 1);
    for (size_t k = 0; k < w.size(); ++k) {
      const float expect_w = init[k] + static_cast<float>(c);
      if (GetParam() == "quantized:8") {
        // One quantization round-trip: error bounded by scale / levels.
        EXPECT_NEAR(w[k], expect_w, 1.0f);
      } else {
        EXPECT_EQ(w[k], expect_w) << c << " " << k;
        EXPECT_EQ(y[k], static_cast<float>(c) - expect_w);
      }
    }
    store->Release(c);
  }
}

INSTANTIATE_TEST_SUITE_P(Backends, StateStoreBackendSweep,
                         ::testing::Values("dense", "lazy", "quantized:8",
                                           "quantized:32"),
                         [](const auto& info) {
                           std::string n = info.param;
                           std::replace(n.begin(), n.end(), ':', '_');
                           return n;
                         });

TEST(DenseStoreTest, ResidentBytesAreMTimesDFromConfigure) {
  auto store = MakeClientStateStore("dense").ValueOrDie();
  store->Configure(kClients, TwoSlots(Ramp(0.0f)));
  EXPECT_EQ(store->bytes_resident(),
            static_cast<int64_t>(kClients) * kDim * 2 * 4);
  // Touching changes nothing: the arena is eager.
  store->MutableView(0, 0)[0] = 1.0f;
  EXPECT_EQ(store->bytes_resident(),
            static_cast<int64_t>(kClients) * kDim * 2 * 4);
}

TEST(LazyStoreTest, ResidentBytesEqualTouchedBlocks) {
  auto store = MakeClientStateStore("lazy").ValueOrDie();
  store->Configure(kClients, TwoSlots(Ramp(0.0f)));
  EXPECT_EQ(store->bytes_resident(), 0);
  EXPECT_EQ(store->num_touched_clients(), 0);

  // Reads never materialize.
  (void)store->View(5, 0);
  (void)store->View(5, 1);
  EXPECT_EQ(store->bytes_resident(), 0);

  // Touch both slots of 3 clients: resident = touched (client, slot)
  // blocks × slot bytes — the satellite's touched-clients × slot-bytes
  // accounting.
  for (int c : {2, 5, 13}) {
    store->MutableView(c, 0);
    store->MutableView(c, 1);
  }
  EXPECT_EQ(store->bytes_resident(), 3 * kDim * 2 * 4);
  EXPECT_EQ(store->num_touched_clients(), 3);

  // Re-touching is free.
  store->MutableView(5, 0);
  EXPECT_EQ(store->bytes_resident(), 3 * kDim * 2 * 4);
}

TEST(LazyStoreTest, SpansStayStableAcrossLaterMaterializations) {
  // Slab growth must never relocate earlier blocks (bump allocation).
  LazyStateStore store;
  std::vector<StateSlotSpec> slots(1);
  slots[0].dim = 512;
  store.Configure(4096, slots);
  const std::span<float> first = store.MutableView(0, 0);
  first[0] = 3.5f;
  for (int c = 1; c < 4096; ++c) store.MutableView(c, 0)[0] = 1.0f;
  EXPECT_EQ(first.data(), store.View(0, 0).data());
  EXPECT_EQ(store.View(0, 0)[0], 3.5f);
}

TEST(QuantizedStoreTest, HotColdLifecycleAndResidentAccounting) {
  QuantizedStateStore store(8);
  store.Configure(kClients, TwoSlots(Ramp(0.0f)));
  EXPECT_EQ(store.bytes_resident(), 0);

  // In-flight: hot fp32 bytes.
  auto w = store.MutableView(7, 0);
  EXPECT_EQ(store.bytes_resident(), kDim * 4);
  w[3] = 9.0f;
  // Release: dirty hot state re-encodes to the cold payload, fp32 dropped.
  store.Release(7);
  const int64_t cold = store.bytes_resident();
  EXPECT_GT(cold, 0);
  EXPECT_LT(cold, kDim * 4);  // 8-bit codes + chunk scale ≪ fp32
  EXPECT_EQ(cold, UniformQuantCodec(8).WireBytes(kDim));

  // A read decodes into the hot cache; releasing a clean client just drops
  // the fp32 copy without re-encoding.
  (void)store.View(7, 0);
  EXPECT_EQ(store.bytes_resident(), cold + kDim * 4);
  store.Release(7);
  EXPECT_EQ(store.bytes_resident(), cold);
}

TEST(QuantizedStoreTest, LossyRoundTripStaysWithinGridBound) {
  QuantizedStateStore store(8);
  store.Configure(kClients, TwoSlots({}));
  Rng rng(5);
  std::vector<float> wrote(static_cast<size_t>(kDim));
  for (auto& v : wrote) v = static_cast<float>(rng.Normal(0.0, 2.0));
  const float scale =
      *std::max_element(wrote.begin(), wrote.end(),
                        [](float a, float b) {
                          return std::fabs(a) < std::fabs(b);
                        });
  auto view = store.MutableView(0, 0);
  std::copy(wrote.begin(), wrote.end(), view.begin());
  store.Release(0);
  const float bound = std::fabs(scale) / 255.0f + 1e-6f;
  const auto back = store.View(0, 0);
  for (size_t k = 0; k < back.size(); ++k) {
    EXPECT_NEAR(back[k], wrote[k], bound) << k;
  }
  store.Release(0);
}

TEST(QuantizedStoreTest, Bits32IsLosslessIdentity) {
  QuantizedStateStore store(32);
  EXPECT_EQ(store.name(), "quantized:32");
  store.Configure(kClients, TwoSlots({}));
  Rng rng(6);
  std::vector<float> wrote(static_cast<size_t>(kDim));
  for (auto& v : wrote) v = static_cast<float>(rng.Normal(0.0, 3.0));
  auto view = store.MutableView(2, 1);
  std::copy(wrote.begin(), wrote.end(), view.begin());
  store.Release(2);
  const auto back = store.View(2, 1);
  EXPECT_TRUE(
      std::equal(back.begin(), back.end(), wrote.begin(), wrote.end()));
  store.Release(2);
}

}  // namespace
}  // namespace fedadmm
