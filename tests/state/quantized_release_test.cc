// QuantizedStateStore release-path churn: an unchanged write-back (a
// read-modify round that converged) must keep the cold payload instead of
// re-encoding it, so resident bytes hold still across arbitrarily many
// hot/cold cycles, and interleaved View/MutableView/Release across stripe
// boundaries preserves the resident-byte invariant exactly.

#include "state/quantized_store.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <span>
#include <vector>

#include "comm/identity.h"
#include "comm/quantize.h"
#include "util/rng.h"

namespace fedadmm {
namespace {

std::vector<StateSlotSpec> OneSlot(int64_t dim) {
  std::vector<StateSlotSpec> slots(1);
  slots[0].dim = dim;
  return slots;
}

// Writes `value` into (client, 0) and releases, returning resident bytes.
int64_t WriteAndRelease(QuantizedStateStore* store, int client,
                        const std::vector<float>& value) {
  std::span<float> w = store->MutableView(client, 0);
  std::memcpy(w.data(), value.data(), value.size() * sizeof(float));
  store->Release(client);
  return store->bytes_resident();
}

TEST(QuantizedReleaseTest, UnchangedWriteBackDoesNotChurnResidentBytes) {
  QuantizedStateStore store(/*bits=*/8);
  store.Configure(/*num_clients=*/4, OneSlot(64));
  std::vector<float> value(64);
  Rng rng(0x0DDB17u);
  for (float& v : value) v = static_cast<float>(rng.Uniform(-1.0, 1.0));
  const int64_t after_first = WriteAndRelease(&store, 0, value);
  EXPECT_GT(after_first, 0);
  // The client now re-reads its own (lossy) state and writes it back
  // unchanged — the convergence steady-state. Bytes must not move, cycle
  // after cycle.
  for (int cycle = 0; cycle < 5; ++cycle) {
    const std::vector<float> seen(store.View(0, 0).begin(),
                                  store.View(0, 0).end());
    store.Release(0);  // drop the read-side hot copy
    EXPECT_EQ(store.bytes_resident(), after_first) << "cycle " << cycle;
    EXPECT_EQ(WriteAndRelease(&store, 0, seen), after_first)
        << "cycle " << cycle;
  }
  // A genuinely different write still persists (and may change bytes for
  // variable-size codecs; for the fixed-size quantizer it stays equal but
  // the *decoded value* must update).
  std::vector<float> changed = value;
  changed[0] += 10.0f;
  WriteAndRelease(&store, 0, changed);
  EXPECT_NEAR(store.View(0, 0)[0], changed[0], 0.1f);
  store.Release(0);
}

TEST(QuantizedReleaseTest, SkipPreservesExactColdPayloadValues) {
  // After the skip, a re-read must see the *identical* floats it wrote
  // back — not a doubly-quantized drift.
  QuantizedStateStore store(/*bits=*/4);
  store.Configure(/*num_clients=*/1, OneSlot(16));
  std::vector<float> value(16);
  for (size_t i = 0; i < value.size(); ++i) {
    value[i] = static_cast<float>(i) * 0.3f - 2.0f;
  }
  WriteAndRelease(&store, 0, value);
  const std::vector<float> first_read(store.View(0, 0).begin(),
                                      store.View(0, 0).end());
  store.Release(0);
  // Write back what was read; repeat. Every subsequent read must be
  // bitwise identical to the first decoded view.
  for (int cycle = 0; cycle < 3; ++cycle) {
    WriteAndRelease(&store, 0, first_read);
    const std::span<const float> r = store.View(0, 0);
    ASSERT_EQ(r.size(), first_read.size());
    for (size_t i = 0; i < first_read.size(); ++i) {
      EXPECT_EQ(r[i], first_read[i]) << "cycle " << cycle << " i " << i;
    }
    store.Release(0);
  }
}

TEST(QuantizedReleaseTest, ResidentInvariantAcrossStripeInterleavings) {
  // Clients 0..199 span all 64 mutex stripes (clients 64, 65, ... share
  // stripes with 0, 1, ...). Interleave mutable touches, reads and
  // releases in a scrambled order, mirroring the store's hot/cold/dirty
  // state machine exactly, and assert after every step:
  //   bytes_resident == #cold * WireBytes(d) + #hot * d * 4.
  const int kClients = 200;
  const int64_t kDim = 32;
  QuantizedStateStore store(/*bits=*/8);
  store.Configure(kClients, OneSlot(kDim));
  const int64_t cold_bytes =
      UniformQuantCodec(8).WireBytes(kDim);  // fixed-size codec
  const int64_t hot_bytes = kDim * static_cast<int64_t>(sizeof(float));
  std::vector<char> hot(kClients, 0), cold(kClients, 0), dirty(kClients, 0);
  int64_t num_hot = 0, num_cold = 0;
  Rng rng(0x57217Eu);
  for (int step = 0; step < 2000; ++step) {
    const size_t c = static_cast<size_t>(rng.UniformInt(0, kClients - 1));
    const int64_t action = rng.UniformInt(0, 2);
    if (action == 0) {
      // Mutable touch: materializes hot (from cold decode or init), dirty.
      std::span<float> w = store.MutableView(static_cast<int>(c), 0);
      w[0] = static_cast<float>(step);  // genuinely change bytes
      num_hot += hot[c] ? 0 : 1;
      hot[c] = 1;
      dirty[c] = 1;
    } else if (action == 1) {
      // Read: decodes into the (clean) hot cache only when cold exists;
      // a never-touched client reads the shared init at zero cost.
      store.View(static_cast<int>(c), 0);
      if (cold[c] && !hot[c]) {
        hot[c] = 1;
        ++num_hot;
      }
    } else {
      // Release: a dirty hot entry persists cold (fixed-size payload, so
      // cold bytes never change once present); a clean one just drops.
      store.Release(static_cast<int>(c));
      if (hot[c]) {
        if (dirty[c] && !cold[c]) {
          cold[c] = 1;
          ++num_cold;
        }
        dirty[c] = 0;
        hot[c] = 0;
        --num_hot;
      }
    }
    ASSERT_EQ(store.bytes_resident(),
              num_cold * cold_bytes + num_hot * hot_bytes)
        << "step " << step << " action " << action << " client " << c;
  }
  // Drain: only cold payloads of touched clients remain.
  for (size_t c = 0; c < static_cast<size_t>(kClients); ++c) {
    store.Release(static_cast<int>(c));
    if (hot[c] && dirty[c] && !cold[c]) {
      cold[c] = 1;
      ++num_cold;
    }
    hot[c] = 0;
  }
  int64_t touched_entries = 0;
  store.ForEachTouched(
      [&](int, int, std::span<const float>) { ++touched_entries; });
  EXPECT_EQ(store.bytes_resident(), touched_entries * cold_bytes);
  EXPECT_EQ(store.num_touched_clients(), static_cast<int>(num_cold));
}

TEST(QuantizedReleaseTest, EncodeDecodeEncodeIsStableAcrossBitWidths) {
  // The skip optimization does NOT rely on codec idempotence — it keeps
  // the original payload — but the quantizers happen to be idempotent
  // (grid points re-quantize to themselves), which this documents:
  // Encode(Decode(Encode(x))) == Encode(x) bytewise.
  Rng rng(0x1DE4Bu);
  std::vector<float> v(48);
  for (float& x : v) x = static_cast<float>(rng.Uniform(-3.0, 3.0));
  for (int bits : {1, 2, 4, 8, 12, 16}) {
    UniformQuantCodec codec(bits);
    const Payload p1 = codec.Encode(/*stream=*/0, v, nullptr);
    const std::vector<float> d1 = codec.Decode(p1);
    const Payload p2 = codec.Encode(/*stream=*/0, d1, nullptr);
    EXPECT_EQ(p1.bytes, p2.bytes) << "bits=" << bits;
  }
  IdentityCodec identity;
  const Payload p1 = identity.Encode(0, v, nullptr);
  const Payload p2 = identity.Encode(0, identity.Decode(p1), nullptr);
  EXPECT_EQ(p1.bytes, p2.bytes);
}

}  // namespace
}  // namespace fedadmm
