/// \file alignment_test.cc
/// \brief 64-byte alignment of the hot-path buffers: dense-store arenas,
/// lazy-store slabs, and Tensor storage — without any stride padding
/// (layout and bytes_resident accounting must not move).

#include <gtest/gtest.h>

#include <vector>

#include "state/client_state_store.h"
#include "state/dense_store.h"
#include "state/lazy_store.h"
#include "tensor/tensor.h"
#include "util/aligned.h"

namespace fedadmm {
namespace {

std::vector<StateSlotSpec> TwoSlots(int64_t dim) {
  std::vector<StateSlotSpec> slots(2);
  slots[0].dim = dim;
  slots[1].dim = dim;
  return slots;
}

TEST(AlignmentTest, AlignedVectorBaseIsCachelineAligned) {
  for (size_t n : {1u, 7u, 64u, 1000u}) {
    AlignedVector<float> v(n, 0.0f);
    EXPECT_TRUE(IsAligned(v.data())) << "n=" << n;
    AlignedVector<float> moved = std::move(v);
    EXPECT_TRUE(IsAligned(moved.data()));
  }
}

TEST(AlignmentTest, DenseStoreArenaAlignedWithoutStridePadding) {
  DenseStateStore store;
  const int64_t dim = 16;  // multiple of 16 floats: every row stays aligned
  store.Configure(/*num_clients=*/5, TwoSlots(dim));
  for (int s = 0; s < store.num_slots(); ++s) {
    EXPECT_TRUE(IsAligned(store.View(0, s).data()));
    // No padding: client c's row starts exactly c*dim floats in.
    for (int c = 1; c < store.num_clients(); ++c) {
      EXPECT_EQ(store.View(c, s).data(), store.View(0, s).data() + c * dim);
    }
  }
  // bytes_resident counts exactly clients * dim * slots * 4: padding-free.
  EXPECT_EQ(store.bytes_resident(),
            5 * dim * static_cast<int64_t>(sizeof(float)) * 2);
}

TEST(AlignmentTest, LazyStoreSlabsAligned) {
  LazyStateStore store;
  const int64_t dim = 32;
  store.Configure(/*num_clients=*/10, TwoSlots(dim));
  // First touch carves from a fresh slab whose base must be aligned; with
  // dim a multiple of 16 floats every subsequent block stays aligned too.
  for (int c = 0; c < 4; ++c) {
    for (int s = 0; s < store.num_slots(); ++s) {
      EXPECT_TRUE(IsAligned(store.MutableView(c, s).data()))
          << "client=" << c << " slot=" << s;
    }
  }
  EXPECT_EQ(store.bytes_resident(),
            4 * dim * static_cast<int64_t>(sizeof(float)) * 2);
}

TEST(AlignmentTest, TensorBuffersAligned) {
  Tensor t(Shape({4, 16}));
  EXPECT_TRUE(IsAligned(t.data()));
  Tensor filled(Shape({64}), 1.5f);
  EXPECT_TRUE(IsAligned(filled.data()));
  Tensor adopted(Shape({3}), {1.0f, 2.0f, 3.0f});
  EXPECT_TRUE(IsAligned(adopted.data()));
  const auto reshaped = adopted.Reshape(Shape({3, 1}));
  ASSERT_TRUE(reshaped.ok());
  EXPECT_TRUE(IsAligned(reshaped.ValueOrDie().data()));
}

}  // namespace
}  // namespace fedadmm
