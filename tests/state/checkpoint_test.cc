// Crash-safe checkpoint/restore of the whole simulation: resumed runs
// replay bitwise against uninterrupted references (sync across all three
// stateful algorithms, and the buffered event mode with its in-flight
// queue), a SIGKILLed child recovers from its last committed group, and a
// torn or corrupt tail falls back to the previous group instead of
// replaying garbage.

#include <gtest/gtest.h>

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/fedadmm.h"
#include "fl/algorithms/fedpd.h"
#include "fl/algorithms/scaffold.h"
#include "fl/quadratic_problem.h"
#include "fl/selection.h"
#include "fl/simulation.h"
#include "sys/event_queue.h"
#include "sys/system_model.h"
#include "util/file_io.h"

namespace fedadmm {
namespace {

constexpr int kClients = 10;
constexpr int kDim = 8;
constexpr int kRounds = 12;
constexpr int kHalf = 6;

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + name;
}

QuadraticSpec Spec() {
  QuadraticSpec spec;
  spec.num_clients = kClients;
  spec.dim = kDim;
  spec.heterogeneity = 1.2;
  spec.seed = 17;
  return spec;
}

std::unique_ptr<FederatedAlgorithm> MakeAlgo(const std::string& name) {
  LocalTrainSpec local;
  local.learning_rate = 0.05f;
  local.batch_size = 3;
  local.max_epochs = 2;
  if (name == "FedADMM") {
    FedAdmmOptions options;
    options.local = local;
    options.rho = StepSchedule(0.4);
    options.eta_active_fraction = true;
    return std::make_unique<FedAdmm>(options);
  }
  if (name == "FedPD") {
    return std::make_unique<FedPd>(local, 0.5f, 0.6, /*seed=*/7);
  }
  return std::make_unique<Scaffold>(local);
}

std::unique_ptr<ClientSelector> MakeSelector(const std::string& algo) {
  if (algo == "FedPD") {
    return std::make_unique<FullParticipationSelector>(kClients);
  }
  return std::make_unique<UniformFractionSelector>(kClients, 0.5);
}

struct RunOutput {
  std::vector<float> theta;
  History history;
};

// One sync run: fresh problem + algorithm each time (the crash-recovery
// semantic — nothing survives in process memory).
RunOutput RunSyncOnce(const std::string& algo_name, int max_rounds,
                      const std::string& checkpoint_path, bool restore,
                      const std::string& state_store = "lazy") {
  QuadraticProblem problem(Spec());
  auto algo = MakeAlgo(algo_name);
  auto selector = MakeSelector(algo_name);
  SimulationConfig config;
  config.max_rounds = max_rounds;
  config.seed = 33;
  config.num_threads = 2;
  config.state_store = state_store;
  config.checkpoint_path = checkpoint_path;
  config.restore_from_checkpoint = restore;
  Simulation sim(&problem, algo.get(), selector.get(), config);
  RunOutput out;
  out.history = std::move(sim.Run()).ValueOrDie();
  out.theta = sim.theta();
  return out;
}

// NaN-aware equality for skipped-eval sentinels.
bool SameMetric(double a, double b) {
  return (std::isnan(a) && std::isnan(b)) || a == b;
}

// Wall-clock fields aside, every deterministic field must match bitwise.
void ExpectIdenticalTrajectories(const RunOutput& a, const RunOutput& b) {
  EXPECT_EQ(a.theta, b.theta);
  ASSERT_EQ(a.history.size(), b.history.size());
  for (int i = 0; i < a.history.size(); ++i) {
    const RoundRecord& ra = a.history.records()[static_cast<size_t>(i)];
    const RoundRecord& rb = b.history.records()[static_cast<size_t>(i)];
    EXPECT_EQ(ra.round, rb.round) << i;
    EXPECT_EQ(ra.num_selected, rb.num_selected) << i;
    EXPECT_TRUE(SameMetric(ra.train_loss, rb.train_loss)) << i;
    EXPECT_TRUE(SameMetric(ra.test_accuracy, rb.test_accuracy)) << i;
    EXPECT_EQ(ra.upload_bytes, rb.upload_bytes) << i;
    EXPECT_EQ(ra.download_bytes, rb.download_bytes) << i;
    EXPECT_EQ(ra.sim_seconds, rb.sim_seconds) << i;
    EXPECT_EQ(ra.num_dropped, rb.num_dropped) << i;
    EXPECT_EQ(ra.state_bytes_resident, rb.state_bytes_resident) << i;
  }
}

class SyncResumeSweep : public ::testing::TestWithParam<std::string> {};

TEST_P(SyncResumeSweep, RestartedRunReplaysUninterruptedBitwise) {
  const std::string algo = GetParam();
  const RunOutput reference =
      RunSyncOnce(algo, kRounds, /*checkpoint_path=*/"", /*restore=*/false);

  const std::string path = TempPath("ckpt_sync_" + algo + ".slab");
  RemoveFileIfExists(path);
  // Phase 1: run half the rounds with checkpointing, then "lose" the
  // process (everything in memory is discarded with these locals).
  RunSyncOnce(algo, kHalf, path, /*restore=*/false);
  // Phase 2: a cold process restores and finishes the budget.
  const RunOutput resumed = RunSyncOnce(algo, kRounds, path, /*restore=*/true);
  ExpectIdenticalTrajectories(reference, resumed);
  RemoveFileIfExists(path);
}

INSTANTIATE_TEST_SUITE_P(Algorithms, SyncResumeSweep,
                         ::testing::Values("FedADMM", "FedPD", "SCAFFOLD"));

TEST(CheckpointTest, ResumeWorksOverTieredStore) {
  // The checkpoint's store slabs round-trip through the out-of-core
  // backend too: restore repopulates via MutableView, evictions and all.
  const std::string store =
      "tiered:3f:" + TempPath("ckpt_tiered_store.slab");
  const RunOutput reference =
      RunSyncOnce("FedADMM", kRounds, "", false, store);
  const std::string path = TempPath("ckpt_over_tiered.slab");
  RemoveFileIfExists(path);
  RunSyncOnce("FedADMM", kHalf, path, false, store);
  const RunOutput resumed = RunSyncOnce("FedADMM", kRounds, path, true, store);
  ExpectIdenticalTrajectories(reference, resumed);
  RemoveFileIfExists(path);
}

TEST(CheckpointTest, KillMidRoundRecoversToIdenticalTrajectory) {
  const std::string path = TempPath("ckpt_kill.slab");
  RemoveFileIfExists(path);
  const RunOutput reference = RunSyncOnce("FedADMM", kRounds, "", false);

  int fds[2];
  ASSERT_EQ(pipe(fds), 0);
  const pid_t child = fork();
  ASSERT_GE(child, 0);
  if (child == 0) {
    // Child: checkpoint every round, signal each finished round through
    // the pipe, and run until SIGKILLed.
    close(fds[0]);
    QuadraticProblem problem(Spec());
    auto algo = MakeAlgo("FedADMM");
    auto selector = MakeSelector("FedADMM");
    SimulationConfig config;
    config.max_rounds = kRounds;
    config.seed = 33;
    config.num_threads = 1;
    config.state_store = "lazy";
    config.checkpoint_path = path;
    Simulation sim(&problem, algo.get(), selector.get(), config);
    sim.set_observer([&](const RoundRecord&) {
      const char byte = 'r';
      (void)!write(fds[1], &byte, 1);
    });
    (void)sim.Run();
    close(fds[1]);
    _exit(0);
  }
  close(fds[1]);
  // Parent: let the child commit a few rounds, then kill it mid-flight.
  char byte = 0;
  int rounds_seen = 0;
  while (rounds_seen < 4 && read(fds[0], &byte, 1) == 1) ++rounds_seen;
  ASSERT_GE(rounds_seen, 1);
  kill(child, SIGKILL);
  int status = 0;
  waitpid(child, &status, 0);
  close(fds[0]);

  // Recovery: a fresh process replays from the last committed group. If
  // the kill tore a half-written group, the log's CRC framing drops it.
  const RunOutput resumed = RunSyncOnce("FedADMM", kRounds, path, true);
  ExpectIdenticalTrajectories(reference, resumed);
  RemoveFileIfExists(path);
}

TEST(CheckpointTest, TornTailFallsBackToPreviousCommittedGroup) {
  const std::string path = TempPath("ckpt_torn.slab");
  RemoveFileIfExists(path);
  const RunOutput reference = RunSyncOnce("SCAFFOLD", kRounds, "", false);
  RunSyncOnce("SCAFFOLD", kHalf, path, false);

  // Chop into the final group's commit record: that group is now
  // uncommitted, so recovery must fall back one round and re-run it.
  {
    std::FILE* f = std::fopen(path.c_str(), "rb+");
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(std::fseek(f, 0, SEEK_END), 0);
    const long size = std::ftell(f);
    ASSERT_GT(size, 8);
    std::fclose(f);
    ASSERT_EQ(truncate(path.c_str(), size - 7), 0);
  }
  const RunOutput resumed = RunSyncOnce("SCAFFOLD", kRounds, path, true);
  ExpectIdenticalTrajectories(reference, resumed);
  RemoveFileIfExists(path);
}

TEST(CheckpointTest, CorruptCommitCrcFallsBackToPreviousGroup) {
  const std::string path = TempPath("ckpt_crc.slab");
  RemoveFileIfExists(path);
  const RunOutput reference = RunSyncOnce("FedADMM", kRounds, "", false);
  RunSyncOnce("FedADMM", kHalf, path, false);

  // Flip one byte inside the trailing commit record's header.
  {
    std::FILE* f = std::fopen(path.c_str(), "rb+");
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(std::fseek(f, -20, SEEK_END), 0);
    const int c = std::fgetc(f);
    ASSERT_EQ(std::fseek(f, -20, SEEK_END), 0);
    std::fputc(c ^ 0x5A, f);
    std::fclose(f);
  }
  const RunOutput resumed = RunSyncOnce("FedADMM", kRounds, path, true);
  ExpectIdenticalTrajectories(reference, resumed);
  RemoveFileIfExists(path);
}

TEST(CheckpointTest, MissingFileStartsFresh) {
  const std::string path = TempPath("ckpt_missing.slab");
  RemoveFileIfExists(path);
  const RunOutput reference = RunSyncOnce("FedADMM", kRounds, "", false);
  // restore_from_checkpoint against a file that never existed: round 0 —
  // the crash-before-first-checkpoint semantic, not an error.
  const RunOutput fresh = RunSyncOnce("FedADMM", kRounds, path, true);
  ExpectIdenticalTrajectories(reference, fresh);
  RemoveFileIfExists(path);
}

TEST(CheckpointTest, CadenceStillCheckpointsFinalRound) {
  const std::string path = TempPath("ckpt_cadence.slab");
  RemoveFileIfExists(path);
  const RunOutput reference = RunSyncOnce("FedADMM", kRounds, "", false);
  {
    QuadraticProblem problem(Spec());
    auto algo = MakeAlgo("FedADMM");
    auto selector = MakeSelector("FedADMM");
    SimulationConfig config;
    config.max_rounds = kHalf;
    config.seed = 33;
    config.num_threads = 2;
    config.state_store = "lazy";
    config.checkpoint_path = path;
    config.checkpoint_every = 4;  // kHalf = 6 is NOT a multiple.
    Simulation sim(&problem, algo.get(), selector.get(), config);
    ASSERT_TRUE(sim.Run().ok());
  }
  // The final record must have been checkpointed despite the cadence, so
  // the resumed run starts at round kHalf, not round 4.
  const RunOutput resumed = RunSyncOnce("FedADMM", kRounds, path, true);
  ExpectIdenticalTrajectories(reference, resumed);
  RemoveFileIfExists(path);
}

RunOutput RunBufferedOnce(int max_rounds, const std::string& checkpoint_path,
                          bool restore) {
  QuadraticProblem problem(Spec());
  FedAdmmOptions options;
  options.local.learning_rate = 0.05f;
  options.local.batch_size = 4;
  options.local.max_epochs = 2;
  options.rho = StepSchedule(0.1);
  options.eta_active_fraction = true;
  FedAdmm algo(options);
  UniformFractionSelector selector(kClients, 0.5);
  FleetModel fleet =
      FleetModel::FromPreset("cellular", kClients, 3).ValueOrDie();
  SystemModel model(std::move(fleet),
                    MakeStragglerPolicy("wait-for-all", -1.0).ValueOrDie());
  SimulationConfig config;
  config.max_rounds = max_rounds;
  config.seed = 9;
  config.num_threads = 2;
  config.mode = ExecutionMode::kBuffered;
  config.buffer_size = 3;
  config.state_store = "lazy";
  config.checkpoint_path = checkpoint_path;
  config.restore_from_checkpoint = restore;
  Simulation sim(&problem, &algo, &selector, config);
  sim.set_system_model(&model);
  RunOutput out;
  out.history = std::move(sim.Run()).ValueOrDie();
  out.theta = sim.theta();
  return out;
}

TEST(CheckpointTest, BufferedEventModeKillRecoversInFlightQueue) {
  // Event-mode checkpoints land at the loop top — a quiescent mid-run
  // state carrying the event queue, the aggregation buffer, and every
  // dispatch counter. Killing the process and restoring from the last
  // committed group must replay the uninterrupted trajectory bitwise.
  // (Note this is crash recovery, not budget extension: a run that
  // *finished* its max_rounds stopped refilling slots, so extending it is
  // a different trajectory by design.)
  const std::string path = TempPath("ckpt_event_kill.slab");
  RemoveFileIfExists(path);
  const RunOutput reference = RunBufferedOnce(kRounds, "", false);

  int fds[2];
  ASSERT_EQ(pipe(fds), 0);
  const pid_t child = fork();
  ASSERT_GE(child, 0);
  if (child == 0) {
    close(fds[0]);
    QuadraticProblem problem(Spec());
    FedAdmmOptions options;
    options.local.learning_rate = 0.05f;
    options.local.batch_size = 4;
    options.local.max_epochs = 2;
    options.rho = StepSchedule(0.1);
    options.eta_active_fraction = true;
    FedAdmm algo(options);
    UniformFractionSelector selector(kClients, 0.5);
    FleetModel fleet =
        FleetModel::FromPreset("cellular", kClients, 3).ValueOrDie();
    SystemModel model(std::move(fleet),
                      MakeStragglerPolicy("wait-for-all", -1.0).ValueOrDie());
    SimulationConfig config;
    config.max_rounds = kRounds;
    config.seed = 9;
    config.num_threads = 1;
    config.mode = ExecutionMode::kBuffered;
    config.buffer_size = 3;
    config.state_store = "lazy";
    config.checkpoint_path = path;
    Simulation sim(&problem, &algo, &selector, config);
    sim.set_system_model(&model);
    sim.set_observer([&](const RoundRecord&) {
      const char byte = 'r';
      (void)!write(fds[1], &byte, 1);
    });
    (void)sim.Run();
    close(fds[1]);
    _exit(0);
  }
  close(fds[1]);
  char byte = 0;
  int rounds_seen = 0;
  while (rounds_seen < 4 && read(fds[0], &byte, 1) == 1) ++rounds_seen;
  ASSERT_GE(rounds_seen, 1);
  kill(child, SIGKILL);
  int status = 0;
  waitpid(child, &status, 0);
  close(fds[0]);

  const RunOutput resumed = RunBufferedOnce(kRounds, path, true);
  ExpectIdenticalTrajectories(reference, resumed);
  RemoveFileIfExists(path);
}

TEST(CheckpointTest, FinishedEventRunRestoresAsFinished) {
  const std::string path = TempPath("ckpt_event_done.slab");
  RemoveFileIfExists(path);
  const RunOutput finished = RunBufferedOnce(kRounds, path, false);
  // The final record was checkpointed; restoring with the same budget
  // replays zero events and returns the identical finished run.
  const RunOutput restored = RunBufferedOnce(kRounds, path, true);
  ExpectIdenticalTrajectories(finished, restored);
  RemoveFileIfExists(path);
}

TEST(CheckpointTest, ModeMismatchIsRejected) {
  const std::string path = TempPath("ckpt_mode.slab");
  RemoveFileIfExists(path);
  RunSyncOnce("FedADMM", kHalf, path, false);  // Sync-mode groups.
  QuadraticProblem problem(Spec());
  FedAdmmOptions options;
  options.eta_active_fraction = true;
  FedAdmm algo(options);
  UniformFractionSelector selector(kClients, 0.5);
  FleetModel fleet =
      FleetModel::FromPreset("cellular", kClients, 3).ValueOrDie();
  SystemModel model(std::move(fleet),
                    MakeStragglerPolicy("wait-for-all", -1.0).ValueOrDie());
  SimulationConfig config;
  config.max_rounds = kRounds;
  config.seed = 33;
  config.mode = ExecutionMode::kBuffered;
  config.checkpoint_path = path;
  config.restore_from_checkpoint = true;
  Simulation sim(&problem, &algo, &selector, config);
  sim.set_system_model(&model);
  const auto result = sim.Run();
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("execution mode"),
            std::string::npos);
  RemoveFileIfExists(path);
}

TEST(CheckpointTest, CodecRunsRejectCheckpointing) {
  // Error-feedback residuals are not serialized: checkpoint + codec must
  // fail fast, not silently produce a non-replayable file.
  QuadraticProblem problem(Spec());
  FedAdmmOptions options;
  options.eta_active_fraction = true;
  FedAdmm algo(options);
  UniformFractionSelector selector(kClients, 0.5);
  auto codec = MakeUpdateCodec("ef:topk10").ValueOrDie();
  SimulationConfig config;
  config.max_rounds = 2;
  config.checkpoint_path = TempPath("ckpt_codec.slab");
  Simulation sim(&problem, &algo, &selector, config);
  sim.set_uplink_codec(codec.get());
  const auto result = sim.Run();
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("codec"), std::string::npos);
}

TEST(CheckpointTest, BadCadenceIsRejected) {
  QuadraticProblem problem(Spec());
  FedAdmmOptions options;
  options.eta_active_fraction = true;
  FedAdmm algo(options);
  UniformFractionSelector selector(kClients, 0.5);
  SimulationConfig config;
  config.max_rounds = 2;
  config.checkpoint_path = TempPath("ckpt_bad_cadence.slab");
  config.checkpoint_every = 0;
  Simulation sim(&problem, &algo, &selector, config);
  EXPECT_FALSE(sim.Run().ok());
}

TEST(EventSerializationTest, CompletionEventRoundTripsEveryField) {
  ClientCompletionEvent event;
  event.time = 12.75;
  event.sequence = 991;
  event.client_id = 4;
  event.wave = 3;
  event.theta_version = 17;
  event.timing.download_seconds = 0.5;
  event.timing.compute_seconds = 2.25;
  event.timing.upload_seconds = 0.125;
  event.decision.fate = ClientFate::kAdmittedPartial;
  event.decision.work_fraction = 0.75;
  event.decision.finish_seconds = 3.5;
  event.decision.download_fraction = 1.0;
  event.message.client_id = 4;
  event.message.delta = {1.0f, -2.5f, 0.125f};
  event.message.delta2 = {0.5f};
  event.message.train_loss = 0.625;
  event.message.epochs_run = 2;
  event.message.steps_run = 9;
  event.message.final_grad_norm_sq = 0.03125;
  event.message.wire_bytes = 77;

  ByteWriter writer;
  SerializeClientCompletionEvent(event, &writer);
  ByteReader reader(writer.str());
  const ClientCompletionEvent decoded =
      DeserializeClientCompletionEvent(&reader).ValueOrDie();
  EXPECT_TRUE(reader.empty());

  EXPECT_EQ(decoded.time, event.time);
  EXPECT_EQ(decoded.sequence, event.sequence);
  EXPECT_EQ(decoded.client_id, event.client_id);
  EXPECT_EQ(decoded.wave, event.wave);
  EXPECT_EQ(decoded.theta_version, event.theta_version);
  EXPECT_EQ(decoded.timing.download_seconds, event.timing.download_seconds);
  EXPECT_EQ(decoded.timing.compute_seconds, event.timing.compute_seconds);
  EXPECT_EQ(decoded.timing.upload_seconds, event.timing.upload_seconds);
  EXPECT_EQ(decoded.decision.fate, event.decision.fate);
  EXPECT_EQ(decoded.decision.work_fraction, event.decision.work_fraction);
  EXPECT_EQ(decoded.decision.finish_seconds, event.decision.finish_seconds);
  EXPECT_EQ(decoded.decision.download_fraction,
            event.decision.download_fraction);
  EXPECT_EQ(decoded.message.client_id, event.message.client_id);
  EXPECT_EQ(decoded.message.delta, event.message.delta);
  EXPECT_EQ(decoded.message.delta2, event.message.delta2);
  EXPECT_EQ(decoded.message.train_loss, event.message.train_loss);
  EXPECT_EQ(decoded.message.epochs_run, event.message.epochs_run);
  EXPECT_EQ(decoded.message.steps_run, event.message.steps_run);
  EXPECT_EQ(decoded.message.final_grad_norm_sq,
            event.message.final_grad_norm_sq);
  EXPECT_EQ(decoded.message.wire_bytes, event.message.wire_bytes);
}

}  // namespace
}  // namespace fedadmm
