/// \file quantize_simd_test.cc
/// \brief Wire-format equivalence of the SIMD quantizer paths.
///
/// Three contracts, fuzzed across bit widths 1..16 and both dispatch
/// modes:
///  * the batch `pack_codes`/`unpack_codes` kernels are byte-identical to
///    `wire::BitPacker`/`wire::BitUnpacker` round trips;
///  * `UniformQuantCodec::Encode` emits identical payload bytes under
///    forced-scalar and AVX2 dispatch (and decodes bitwise identically);
///  * `StochasticQuantCodec` (sequential Rng path) still round-trips and
///    is unaffected by the dispatch mode.

#include <cmath>
#include <cstdint>
#include <cstring>
#include <vector>

#include "comm/quantize.h"
#include "comm/wire.h"
#include "gtest/gtest.h"
#include "tensor/simd/simd.h"
#include "util/rng.h"

namespace fedadmm {
namespace {

std::vector<float> RandomUpdate(Rng* rng, size_t n) {
  std::vector<float> v(n);
  for (auto& x : v) x = static_cast<float>(rng->Normal(0.0, 1.0));
  return v;
}

/// Runs `fn` once per dispatch mode available on this host, restoring
/// environment-based resolution afterwards.
template <typename Fn>
void ForEachIsa(const Fn& fn) {
  fn(simd::Isa::kScalar);
  if (simd::Avx2Kernels() != nullptr) fn(simd::Isa::kAvx2);
  simd::ForceIsaForTesting(std::nullopt);
}

TEST(QuantizeSimdTest, PackRoundTripMatchesBitPackerAllWidths) {
  Rng rng(0xB1);
  for (int bits = 1; bits <= 16; ++bits) {
    for (size_t n : {size_t{0}, size_t{1}, size_t{5}, size_t{16}, size_t{31},
                     size_t{256}, size_t{300}}) {
      std::vector<uint16_t> codes(n);
      const uint32_t maxc = (1u << bits) - 1u;
      for (auto& c : codes) {
        c = static_cast<uint16_t>(rng.UniformInt(0, maxc));
      }
      // Reference bytes through the wire-layer packer.
      std::vector<uint8_t> ref;
      wire::Writer writer(&ref);
      wire::BitPacker packer(&writer, bits);
      for (uint16_t c : codes) packer.Put(c);
      packer.Flush();
      ASSERT_EQ(ref.size(),
                static_cast<size_t>(wire::BitPacker::PackedBytes(
                    static_cast<int64_t>(n), bits)));

      ForEachIsa([&](simd::Isa isa) {
        simd::ForceIsaForTesting(isa);
        const simd::KernelTable& k = simd::ActiveKernels();
        std::vector<uint8_t> packed(ref.size(), 0xAB);
        k.pack_codes(codes.data(), n, bits, packed.data());
        ASSERT_EQ(packed, ref)
            << "pack " << simd::IsaName(isa) << " bits=" << bits
            << " n=" << n;
        std::vector<uint16_t> unpacked(n);
        k.unpack_codes(packed.data(), n, bits, unpacked.data());
        ASSERT_EQ(unpacked, codes)
            << "unpack " << simd::IsaName(isa) << " bits=" << bits
            << " n=" << n;
      });
    }
  }
}

TEST(QuantizeSimdTest, UniformEncodeBytesIdenticalAcrossDispatch) {
  Rng rng(0xB2);
  for (int bits : {1, 4, 8, 12, 16}) {
    for (size_t n : {size_t{0}, size_t{1}, size_t{255}, size_t{256},
                     size_t{1000}}) {
      const std::vector<float> v = RandomUpdate(&rng, n);
      std::vector<Payload> payloads;
      std::vector<std::vector<float>> decodes;
      ForEachIsa([&](simd::Isa isa) {
        simd::ForceIsaForTesting(isa);
        UniformQuantCodec codec(bits);
        payloads.push_back(codec.Encode(/*stream=*/0, v, /*rng=*/nullptr));
        decodes.push_back(codec.Decode(payloads.back()));
        ASSERT_EQ(static_cast<int64_t>(payloads.back().bytes.size()),
                  codec.WireBytes(static_cast<int64_t>(n)));
      });
      for (size_t i = 1; i < payloads.size(); ++i) {
        ASSERT_EQ(payloads[i].bytes, payloads[0].bytes)
            << "bits=" << bits << " n=" << n;
        ASSERT_EQ(decodes[i], decodes[0]) << "bits=" << bits << " n=" << n;
      }
    }
  }
}

TEST(QuantizeSimdTest, StochasticUnaffectedByDispatch) {
  Rng data_rng(0xB3);
  const std::vector<float> v = RandomUpdate(&data_rng, 700);
  std::vector<Payload> payloads;
  ForEachIsa([&](simd::Isa isa) {
    simd::ForceIsaForTesting(isa);
    StochasticQuantCodec codec(8);
    Rng enc_rng(42);  // same stream per mode: payload must be identical
    payloads.push_back(codec.Encode(/*stream=*/0, v, &enc_rng));
  });
  for (size_t i = 1; i < payloads.size(); ++i) {
    ASSERT_EQ(payloads[i].bytes, payloads[0].bytes);
  }
  StochasticQuantCodec codec(8);
  const std::vector<float> decoded = codec.Decode(payloads[0]);
  ASSERT_EQ(decoded.size(), v.size());
  // Reconstruction error bounded by one grid step per chunk.
  for (size_t i = 0; i < v.size(); ++i) {
    ASSERT_LT(std::fabs(decoded[i] - v[i]), 1.0f);
  }
}

TEST(QuantizeSimdTest, AllZeroChunksDecodeExactly) {
  ForEachIsa([&](simd::Isa isa) {
    simd::ForceIsaForTesting(isa);
    UniformQuantCodec codec(8);
    const std::vector<float> zeros(600, 0.0f);
    const Payload p = codec.Encode(0, zeros, nullptr);
    const std::vector<float> d = codec.Decode(p);
    for (float x : d) ASSERT_EQ(x, 0.0f);
  });
}

}  // namespace
}  // namespace fedadmm
