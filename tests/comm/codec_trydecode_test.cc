// The boundary-decode surface: `TryDecode` must agree bitwise with the
// trusted `Decode` on every payload a codec can emit, must reject malformed
// bytes with a Status (never a CHECK abort — these bytes come off the
// network), and every encoder must emit exactly `WireBytes(dim)` bytes (the
// accounting paths and the serving frontend's structural validation both
// assume the equality).

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <limits>
#include <string>
#include <vector>

#include "comm/codec.h"
#include "comm/codec_test_util.h"
#include "util/rng.h"

namespace fedadmm {
namespace {

std::vector<int64_t> TestDims() {
  return {0, 1, 2, 3, 7, 8, 63, 255, 256, 257, 1000, 4096};
}

class TryDecodeSpecTest : public ::testing::TestWithParam<std::string> {};

TEST_P(TryDecodeSpecTest, MatchesDecodeBitwiseOnEveryPayload) {
  for (int64_t dim : TestDims()) {
    auto codec = MakeUpdateCodec(GetParam()).ValueOrDie();
    Rng rng(0xC0DEC0ull + static_cast<uint64_t>(dim));
    const std::vector<float> v =
        testing::RandomVector(static_cast<size_t>(dim), &rng);
    const Payload payload = codec->Encode(/*stream=*/0, v, &rng);
    const std::vector<float> trusted = codec->Decode(payload);
    auto boundary =
        codec->TryDecode(payload.bytes.data(), payload.bytes.size(), dim);
    ASSERT_TRUE(boundary.ok())
        << GetParam() << " dim=" << dim << ": " << boundary.status().message();
    ASSERT_EQ(boundary->size(), trusted.size()) << GetParam() << " " << dim;
    for (size_t i = 0; i < trusted.size(); ++i) {
      // Bitwise, not approximate: the serving frontend replaces Decode with
      // TryDecode on the ingest path and the trajectory must not move.
      uint32_t a = 0;
      uint32_t b = 0;
      std::memcpy(&a, &trusted[i], sizeof(a));
      std::memcpy(&b, &(*boundary)[i], sizeof(b));
      ASSERT_EQ(a, b) << GetParam() << " dim=" << dim << " index=" << i;
    }
  }
}

TEST_P(TryDecodeSpecTest, EncodeEmitsExactlyWireBytes) {
  // The exact-reserve pin: Encode reserves WireBytes(dim) up front and must
  // fill it exactly — a drifting WireBytes silently corrupts the virtual
  // clock's transfer accounting and the frontend's frame validation.
  for (int64_t dim : TestDims()) {
    auto codec = MakeUpdateCodec(GetParam()).ValueOrDie();
    Rng rng(0x5EED + static_cast<uint64_t>(dim));
    const std::vector<float> v =
        testing::RandomVector(static_cast<size_t>(dim), &rng);
    const Payload payload = codec->Encode(/*stream=*/0, v, &rng);
    EXPECT_EQ(static_cast<int64_t>(payload.bytes.size()),
              codec->WireBytes(dim))
        << GetParam() << " dim=" << dim;
  }
}

TEST_P(TryDecodeSpecTest, MalformedBytesReturnStatusNotAbort) {
  const int64_t dim = 257;
  auto codec = MakeUpdateCodec(GetParam()).ValueOrDie();
  Rng rng(0xBAD5EEDull);
  const std::vector<float> v =
      testing::RandomVector(static_cast<size_t>(dim), &rng);
  const Payload payload = codec->Encode(/*stream=*/0, v, &rng);
  const std::vector<uint8_t>& good = payload.bytes;

  // Empty span.
  EXPECT_FALSE(codec->TryDecode(nullptr, 0, dim).ok());
  // Truncations at every byte boundary of the front of the payload, plus
  // one-short.
  for (size_t cut : {size_t{1}, size_t{7}, size_t{8}, good.size() / 2,
                     good.size() - 1}) {
    if (cut >= good.size()) continue;
    EXPECT_FALSE(codec->TryDecode(good.data(), cut, dim).ok())
        << GetParam() << " cut=" << cut;
  }
  // Trailing garbage.
  std::vector<uint8_t> padded = good;
  padded.push_back(0xEE);
  EXPECT_FALSE(codec->TryDecode(padded.data(), padded.size(), dim).ok());
  // Dim mismatch: the bytes are valid for 257, the caller expected 256.
  EXPECT_FALSE(codec->TryDecode(good.data(), good.size(), dim - 1).ok());
  EXPECT_FALSE(codec->TryDecode(good.data(), good.size(), -1).ok());
}

std::string SpecName(const ::testing::TestParamInfo<std::string>& info) {
  std::string name = info.param;
  std::replace(name.begin(), name.end(), ':', '_');
  return name;
}

INSTANTIATE_TEST_SUITE_P(AllExampleSpecs, TryDecodeSpecTest,
                         ::testing::ValuesIn(UpdateCodecExampleSpecs()),
                         SpecName);

TEST(TryDecodeAdversarialTest, TopKRejectsHostileIndexStructures) {
  auto codec = MakeUpdateCodec("topk10").ValueOrDie();
  Rng rng(0x70FFull);
  const int64_t dim = 100;
  const std::vector<float> v =
      testing::RandomVector(static_cast<size_t>(dim), &rng);
  const Payload payload = codec->Encode(/*stream=*/0, v, &rng);
  // Layout: u64 dim | u64 k | k*u32 indices | k*f32 values.
  const size_t k = (payload.bytes.size() - 16) / 8;
  ASSERT_GE(k, 2u);

  // Out-of-range index.
  std::vector<uint8_t> oob = payload.bytes;
  const uint32_t big = 0xFFFFFFFFu;
  std::memcpy(oob.data() + 16, &big, sizeof(big));
  EXPECT_FALSE(codec->TryDecode(oob.data(), oob.size(), dim).ok());

  // Duplicate index (write index[1] = index[0]) — a duplicate would let one
  // wire coordinate overwrite another.
  std::vector<uint8_t> dup = payload.bytes;
  std::memcpy(dup.data() + 16 + 4, dup.data() + 16, 4);
  EXPECT_FALSE(codec->TryDecode(dup.data(), dup.size(), dim).ok());

  // Unsorted indices (swap the first two).
  std::vector<uint8_t> unsorted = payload.bytes;
  uint32_t i0 = 0;
  uint32_t i1 = 0;
  std::memcpy(&i0, unsorted.data() + 16, 4);
  std::memcpy(&i1, unsorted.data() + 16 + 4, 4);
  std::memcpy(unsorted.data() + 16, &i1, 4);
  std::memcpy(unsorted.data() + 16 + 4, &i0, 4);
  EXPECT_FALSE(codec->TryDecode(unsorted.data(), unsorted.size(), dim).ok());

  // A lying k that keeps the length equation satisfied cannot smuggle
  // bytes: k > dim is rejected outright.
  std::vector<uint8_t> bigk = payload.bytes;
  const uint64_t huge = static_cast<uint64_t>(dim) + 1;
  std::memcpy(bigk.data() + 8, &huge, sizeof(huge));
  EXPECT_FALSE(codec->TryDecode(bigk.data(), bigk.size(), dim).ok());
}

TEST(TryDecodeAdversarialTest, QuantRejectsHostileScales) {
  auto codec = MakeUpdateCodec("q8").ValueOrDie();
  Rng rng(0x5CA1Eull);
  const int64_t dim = 64;
  const std::vector<float> v =
      testing::RandomVector(static_cast<size_t>(dim), &rng);
  const Payload payload = codec->Encode(/*stream=*/0, v, &rng);
  // Layout: u64 dim | per chunk: f32 scale + packed codes. Corrupt the
  // first chunk scale to NaN / inf / negative — all must bounce at the
  // door instead of smuggling non-finite values into the reduce.
  for (float evil : {std::numeric_limits<float>::quiet_NaN(),
                     std::numeric_limits<float>::infinity(), -1.0f}) {
    std::vector<uint8_t> bad = payload.bytes;
    std::memcpy(bad.data() + 8, &evil, sizeof(evil));
    EXPECT_FALSE(codec->TryDecode(bad.data(), bad.size(), dim).ok());
  }
  // A corrupted dim header is caught before any allocation sized from it.
  std::vector<uint8_t> liar = payload.bytes;
  const uint64_t huge = ~0ull;
  std::memcpy(liar.data(), &huge, sizeof(huge));
  EXPECT_FALSE(codec->TryDecode(liar.data(), liar.size(), dim).ok());
}

TEST(TryDecodeAdversarialTest, IdentityRejectsLengthMismatch) {
  auto codec = MakeUpdateCodec("identity").ValueOrDie();
  const std::vector<uint8_t> bytes(12, 0);  // 3 floats
  EXPECT_TRUE(codec->TryDecode(bytes.data(), bytes.size(), 3).ok());
  EXPECT_FALSE(codec->TryDecode(bytes.data(), bytes.size(), 4).ok());
  EXPECT_FALSE(codec->TryDecode(bytes.data(), 11, 3).ok());
}

TEST(TryDecodeCapabilityTest, DeterminismAndStatefulnessFlags) {
  // The serving frontend keys its codec validation off these flags; pin
  // them so a refactor cannot silently flip a codec's serving eligibility.
  EXPECT_TRUE(MakeUpdateCodec("identity").ValueOrDie()->deterministic());
  EXPECT_TRUE(MakeUpdateCodec("q8").ValueOrDie()->deterministic());
  EXPECT_TRUE(MakeUpdateCodec("topk10").ValueOrDie()->deterministic());
  EXPECT_FALSE(MakeUpdateCodec("sq4").ValueOrDie()->deterministic());
  EXPECT_FALSE(MakeUpdateCodec("identity").ValueOrDie()->stateful());
  EXPECT_FALSE(MakeUpdateCodec("q8").ValueOrDie()->stateful());
  EXPECT_TRUE(MakeUpdateCodec("ef:q8").ValueOrDie()->stateful());
}

}  // namespace
}  // namespace fedadmm
