// The wire layer's two reader tiers. Pins (a) the little-endian byte
// layout of Writer against hardcoded bytes — the memcpy fast paths must be
// byte-identical to the historical per-byte shift loops, or every payload
// on disk and on the wire silently changes — and (b) the Status-returning
// ReaderView boundary parser: bitwise agreement with the trusted Reader on
// good bytes, clean InvalidArgument (never an abort) on truncation.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <vector>

#include "comm/wire.h"

namespace fedadmm::wire {
namespace {

TEST(WireWriterTest, LayoutMatchesHardcodedLittleEndianBytes) {
  std::vector<uint8_t> out;
  Writer w(&out);
  w.PutU8(0xAB);
  w.PutU16(0x1234);
  w.PutU32(0x89ABCDEFu);
  w.PutU64(0x0123456789ABCDEFull);
  const std::vector<uint8_t> expected = {
      0xAB,                                            // u8
      0x34, 0x12,                                      // u16 LE
      0xEF, 0xCD, 0xAB, 0x89,                          // u32 LE
      0xEF, 0xCD, 0xAB, 0x89, 0x67, 0x45, 0x23, 0x01,  // u64 LE
  };
  EXPECT_EQ(out, expected);
}

TEST(WireWriterTest, FloatsSerializeAsTheirIeeeBits) {
  std::vector<uint8_t> out;
  Writer w(&out);
  w.PutF32(1.0f);   // 0x3F800000
  w.PutF64(-2.0);   // 0xC000000000000000
  const std::vector<uint8_t> expected = {
      0x00, 0x00, 0x80, 0x3F,                          // f32 1.0 LE
      0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0xC0,  // f64 -2.0 LE
  };
  EXPECT_EQ(out, expected);
}

TEST(WireWriterTest, MemcpyFastPathMatchesShiftLoopSemantics) {
  // The same values written via the generic shift formulation, byte by
  // byte — the regression pin for the memcpy specialization.
  const uint32_t v32 = 0xDEADBEEFu;
  const uint64_t v64 = 0xFEEDFACECAFEBEEFull;
  std::vector<uint8_t> fast;
  Writer w(&fast);
  w.PutU32(v32);
  w.PutU64(v64);
  std::vector<uint8_t> shifted;
  for (int i = 0; i < 4; ++i) {
    shifted.push_back(static_cast<uint8_t>(v32 >> (8 * i)));
  }
  for (int i = 0; i < 8; ++i) {
    shifted.push_back(static_cast<uint8_t>(v64 >> (8 * i)));
  }
  EXPECT_EQ(fast, shifted);
}

TEST(WireReaderTest, RoundTripsWriterOutput) {
  std::vector<uint8_t> out;
  Writer w(&out);
  w.PutU8(7);
  w.PutU32(123456789u);
  w.PutU64(0xFFFFFFFFFFFFFFFFull);
  w.PutF32(3.25f);
  Reader r(out);
  EXPECT_EQ(r.GetU8(), 7);
  EXPECT_EQ(r.GetU32(), 123456789u);
  EXPECT_EQ(r.GetU64(), 0xFFFFFFFFFFFFFFFFull);
  EXPECT_EQ(r.GetF32(), 3.25f);
  EXPECT_EQ(r.remaining(), 0u);
}

TEST(ReaderViewTest, AgreesWithTrustedReaderOnGoodBytes) {
  std::vector<uint8_t> out;
  Writer w(&out);
  w.PutU8(0x42);
  w.PutU16(0xBEEF);
  w.PutU32(0xCAFEBABEu);
  w.PutU64(0x123456789ABCDEF0ull);
  w.PutF32(-0.5f);
  w.PutF64(1e300);

  ReaderView view(out.data(), out.size());
  uint8_t u8 = 0;
  uint16_t u16 = 0;
  uint32_t u32 = 0;
  uint64_t u64 = 0;
  float f32 = 0;
  double f64 = 0;
  ASSERT_TRUE(view.TryU8(&u8).ok());
  ASSERT_TRUE(view.TryU16(&u16).ok());
  ASSERT_TRUE(view.TryU32(&u32).ok());
  ASSERT_TRUE(view.TryU64(&u64).ok());
  ASSERT_TRUE(view.TryF32(&f32).ok());
  ASSERT_TRUE(view.TryF64(&f64).ok());
  EXPECT_EQ(u8, 0x42);
  EXPECT_EQ(u16, 0xBEEF);
  EXPECT_EQ(u32, 0xCAFEBABEu);
  EXPECT_EQ(u64, 0x123456789ABCDEF0ull);
  EXPECT_EQ(f32, -0.5f);
  EXPECT_EQ(f64, 1e300);
  EXPECT_EQ(view.remaining(), 0u);
  EXPECT_EQ(view.consumed(), out.size());
}

TEST(ReaderViewTest, TruncationIsStatusNotAbort) {
  const std::vector<uint8_t> three = {1, 2, 3};
  ReaderView view(three.data(), three.size());
  uint32_t u32 = 0;
  EXPECT_FALSE(view.TryU32(&u32).ok());
  // A failed read consumes nothing; narrower reads still succeed.
  uint16_t u16 = 0;
  EXPECT_TRUE(view.TryU16(&u16).ok());
  uint8_t u8 = 0;
  EXPECT_TRUE(view.TryU8(&u8).ok());
  EXPECT_FALSE(view.TryU8(&u8).ok());
}

TEST(ReaderViewTest, TrySkipBoundsCheckAndViewStability) {
  const std::vector<uint8_t> bytes = {9, 8, 7, 6, 5};
  ReaderView view(bytes.data(), bytes.size());
  const uint8_t* span = nullptr;
  ASSERT_TRUE(view.TrySkip(3, &span).ok());
  EXPECT_EQ(span, bytes.data());
  EXPECT_EQ(view.remaining(), 2u);
  EXPECT_FALSE(view.TrySkip(3, &span).ok());  // only 2 left
  ASSERT_TRUE(view.TrySkip(2, &span).ok());
  EXPECT_EQ(span, bytes.data() + 3);
  EXPECT_EQ(view.remaining(), 0u);
  // Zero-length skip at the end is legal (empty trailing payloads).
  ASSERT_TRUE(view.TrySkip(0, &span).ok());
}

TEST(ReaderViewTest, EmptySpanIsLegalAndEmpty) {
  ReaderView view(nullptr, 0);
  uint8_t u8 = 0;
  EXPECT_FALSE(view.TryU8(&u8).ok());
  EXPECT_EQ(view.remaining(), 0u);
}

}  // namespace
}  // namespace fedadmm::wire
