// Top-k sparsification properties: the k largest magnitudes survive bit-
// exactly, everything else decodes to zero, the dropped mass is bounded by
// the smallest kept magnitude, and ties break deterministically.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <functional>
#include <limits>
#include <vector>

#include "comm/codec_test_util.h"
#include "comm/topk.h"

namespace fedadmm {
namespace {

using testing::RandomVector;

TEST(TopKTest, PreservesTheKLargestMagnitudesExactly) {
  Rng rng(29);
  TopKCodec codec(0.1);
  const std::vector<float> v = RandomVector(500, &rng);
  const std::vector<float> decoded = codec.Decode(codec.Encode(0, v, nullptr));
  ASSERT_EQ(decoded.size(), v.size());
  const int64_t k = codec.KForDim(500);
  EXPECT_EQ(k, 50);

  // Reference selection: magnitudes sorted descending.
  std::vector<float> magnitudes(v.size());
  std::transform(v.begin(), v.end(), magnitudes.begin(),
                 [](float x) { return std::fabs(x); });
  std::sort(magnitudes.begin(), magnitudes.end(), std::greater<float>());
  const float kth = magnitudes[static_cast<size_t>(k - 1)];

  int64_t kept = 0;
  float max_dropped = 0.0f;
  float min_kept = std::numeric_limits<float>::infinity();
  for (size_t i = 0; i < v.size(); ++i) {
    if (decoded[i] != 0.0f) {
      // Every survivor is bit-exact and belongs to the top set.
      EXPECT_EQ(decoded[i], v[i]) << i;
      EXPECT_GE(std::fabs(v[i]), kth) << i;
      min_kept = std::min(min_kept, std::fabs(v[i]));
      ++kept;
    } else {
      max_dropped = std::max(max_dropped, std::fabs(v[i]));
    }
  }
  // Zeros in v may also decode to zero, so count via the reference kth.
  EXPECT_EQ(kept, k);
  EXPECT_LE(max_dropped, min_kept);
}

TEST(TopKTest, FullFractionIsLosslessOnValues) {
  Rng rng(31);
  TopKCodec codec(1.0);
  const std::vector<float> v = RandomVector(123, &rng);
  EXPECT_EQ(codec.Decode(codec.Encode(0, v, nullptr)), v);
}

TEST(TopKTest, TiesBreakTowardLowerIndicesDeterministically) {
  TopKCodec codec(0.5);  // k = 2 of 4
  const std::vector<float> v = {1.0f, -1.0f, 1.0f, 1.0f};
  const std::vector<float> decoded = codec.Decode(codec.Encode(0, v, nullptr));
  EXPECT_EQ(decoded, (std::vector<float>{1.0f, -1.0f, 0.0f, 0.0f}));
  // And twice in a row yields identical bytes.
  EXPECT_EQ(codec.Encode(0, v, nullptr).bytes,
            codec.Encode(0, v, nullptr).bytes);
}

TEST(TopKTest, NonEmptyVectorKeepsAtLeastOneCoordinate) {
  TopKCodec codec(0.01);
  const std::vector<float> v = {0.0f, 3.0f, 0.0f};  // 1% of 3 rounds up to 1
  const std::vector<float> decoded = codec.Decode(codec.Encode(0, v, nullptr));
  EXPECT_EQ(decoded, (std::vector<float>{0.0f, 3.0f, 0.0f}));
}

TEST(TopKTest, EmptyVectorRoundTrips) {
  TopKCodec codec(0.1);
  const std::vector<float> v;
  const Payload payload = codec.Encode(0, v, nullptr);
  EXPECT_EQ(payload.WireBytes(), 16);
  EXPECT_TRUE(codec.Decode(payload).empty());
}

TEST(TopKTest, KForDimUsesCeil) {
  TopKCodec codec(0.1);
  EXPECT_EQ(codec.KForDim(0), 0);
  EXPECT_EQ(codec.KForDim(1), 1);
  EXPECT_EQ(codec.KForDim(10), 1);
  EXPECT_EQ(codec.KForDim(11), 2);
  EXPECT_EQ(codec.KForDim(100), 10);
  EXPECT_EQ(codec.KForDim(101), 11);
}

TEST(TopKTest, SignsAndDenormalsSurviveExactly) {
  TopKCodec codec(1.0);
  const std::vector<float> v = {-1e-41f, 1e-41f, -0.0f, 5e37f};
  const std::vector<float> decoded = codec.Decode(codec.Encode(0, v, nullptr));
  ASSERT_EQ(decoded.size(), v.size());
  EXPECT_EQ(decoded[0], -1e-41f);
  EXPECT_EQ(decoded[1], 1e-41f);
  EXPECT_EQ(decoded[3], 5e37f);
}

}  // namespace
}  // namespace fedadmm
