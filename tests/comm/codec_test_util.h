/// \file codec_test_util.h
/// \brief Shared helpers for the codec property tests: reference error
/// bounds re-derived independently of the codec implementation, and seeded
/// test-vector generators.

#ifndef FEDADMM_TESTS_COMM_CODEC_TEST_UTIL_H_
#define FEDADMM_TESTS_COMM_CODEC_TEST_UTIL_H_

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "util/rng.h"

namespace fedadmm::testing {

/// One ulp of |x| — the slack a float round-trip may legitimately add on
/// top of a codec's mathematical bound.
inline double Ulp(float x) {
  const float ax = std::fabs(x);
  return static_cast<double>(
      std::nextafter(ax, std::numeric_limits<float>::infinity()) - ax);
}

/// Per-chunk scales (max |v| per chunk) — the reference for quantizer
/// bounds, computed independently of the codec.
inline std::vector<float> ChunkScales(const std::vector<float>& v,
                                      int chunk) {
  std::vector<float> scales;
  for (size_t begin = 0; begin < v.size();
       begin += static_cast<size_t>(chunk)) {
    const size_t end =
        std::min(begin + static_cast<size_t>(chunk), v.size());
    float s = 0.0f;
    for (size_t i = begin; i < end; ++i) s = std::max(s, std::fabs(v[i]));
    scales.push_back(s);
  }
  return scales;
}

/// Checks |decoded - v| coordinate-wise against a chunked quantizer bound of
/// `steps` grid steps (1 = deterministic rounding, 2 = stochastic).
/// Returns the first violating index, or -1 if the bound holds.
inline int64_t FirstQuantBoundViolation(const std::vector<float>& v,
                                        const std::vector<float>& decoded,
                                        int bits, int chunk, double steps) {
  const std::vector<float> scales = ChunkScales(v, chunk);
  const double levels = static_cast<double>((1 << bits) - 1);
  for (size_t i = 0; i < v.size(); ++i) {
    const float scale = scales[i / static_cast<size_t>(chunk)];
    const double bound =
        steps * static_cast<double>(scale) / levels + 2.0 * Ulp(scale);
    const double err = std::fabs(static_cast<double>(decoded[i]) -
                                 static_cast<double>(v[i]));
    if (err > bound) return static_cast<int64_t>(i);
  }
  return -1;
}

/// A seeded random vector mixing magnitudes across ~40 orders of magnitude
/// (denormals included), with a sprinkling of exact zeros.
inline std::vector<float> RandomVector(size_t dim, Rng* rng) {
  std::vector<float> v(dim);
  for (float& x : v) {
    const double u = rng->Uniform();
    if (u < 0.1) {
      x = 0.0f;
    } else if (u < 0.2) {
      // Denormal-range values.
      x = static_cast<float>(rng->Normal(0.0, 1.0) * 1e-41);
    } else if (u < 0.3) {
      // Large (but inf-free) magnitudes.
      x = static_cast<float>(rng->Normal(0.0, 1.0) * 1e37);
    } else {
      x = static_cast<float>(rng->Normal(0.0, 1.0));
    }
  }
  return v;
}

}  // namespace fedadmm::testing

#endif  // FEDADMM_TESTS_COMM_CODEC_TEST_UTIL_H_
