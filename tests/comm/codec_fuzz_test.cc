// Randomized cross-codec fuzz: ~100 seeded random vectors — empty,
// all-zero, denormal-heavy, large-magnitude (inf-free) and chunk-boundary
// sized — through every factory codec. Every codec must preserve the
// dimension exactly and honor its documented error bound; chunk-boundary
// off-by-ones and scale underflow are the bugs this net catches.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "comm/codec.h"
#include "comm/codec_test_util.h"
#include "comm/quantize.h"
#include "comm/topk.h"

namespace fedadmm {
namespace {

using testing::FirstQuantBoundViolation;
using testing::RandomVector;

// Dimensions hammering the chunk (256) and packing boundaries.
size_t FuzzDim(int trial, Rng* rng) {
  switch (trial % 5) {
    case 0:
      return static_cast<size_t>(rng->UniformInt(0, 8));
    case 1:
      return static_cast<size_t>(255 + rng->UniformInt(0, 2));  // 255..257
    case 2:
      return static_cast<size_t>(511 + rng->UniformInt(0, 2));
    case 3:
      return static_cast<size_t>(rng->UniformInt(1, 2048));
    default:
      return static_cast<size_t>(rng->UniformInt(1, 64));
  }
}

std::vector<float> FuzzVector(int trial, Rng* rng) {
  const size_t dim = FuzzDim(trial, rng);
  if (trial % 7 == 0) return std::vector<float>(dim, 0.0f);  // all-zero
  return RandomVector(dim, rng);
}

// Returns the documented per-coordinate error bound check for `spec`.
// Top-k family: kept coordinates exact, dropped magnitudes <= min kept.
void CheckTopKBound(const std::vector<float>& v,
                    const std::vector<float>& decoded,
                    const std::string& spec) {
  float min_kept = std::numeric_limits<float>::infinity();
  float max_dropped = 0.0f;
  for (size_t i = 0; i < v.size(); ++i) {
    if (decoded[i] != 0.0f) {
      // A surviving coordinate is bit-exact.
      ASSERT_EQ(decoded[i], v[i]) << spec << " index " << i;
      min_kept = std::min(min_kept, std::fabs(v[i]));
    } else {
      // Dropped, or a kept zero — either way |v[i]| bounds as dropped mass.
      max_dropped = std::max(max_dropped, std::fabs(v[i]));
    }
  }
  EXPECT_LE(max_dropped, min_kept) << spec;
}

TEST(CodecFuzzTest, HundredSeededVectorsThroughEveryCodec) {
  const int kTrials = 100;
  for (const std::string& spec : UpdateCodecExampleSpecs()) {
    for (int trial = 0; trial < kTrials; ++trial) {
      // Fresh codec per vector: EF wrappers start with a zero residual, so
      // the inner codec's single-shot bound applies to them too.
      auto codec = MakeUpdateCodec(spec);
      ASSERT_TRUE(codec.ok()) << spec;
      Rng rng(static_cast<uint64_t>(trial) * 1000003u + 17u);
      const std::vector<float> v = FuzzVector(trial, &rng);
      Rng encode_rng = rng.Fork(0xF022);

      const Payload payload = (*codec)->Encode(0, v, &encode_rng);
      EXPECT_EQ((*codec)->WireBytes(static_cast<int64_t>(v.size())),
                payload.WireBytes())
          << spec << " trial " << trial << " dim " << v.size();

      const std::vector<float> decoded = (*codec)->Decode(payload);
      ASSERT_EQ(decoded.size(), v.size())
          << spec << " trial " << trial << " dim " << v.size();

      if (spec == "identity") {
        EXPECT_EQ(decoded, v) << "trial " << trial;
      } else if (spec == "fp16" || spec[0] == 'q') {
        const int bits = spec == "fp16" ? 16 : std::stoi(spec.substr(1));
        EXPECT_EQ(FirstQuantBoundViolation(v, decoded, bits,
                                           kDefaultQuantChunk, 1.0),
                  -1)
            << spec << " trial " << trial;
      } else if (spec.rfind("sq", 0) == 0) {
        const int bits = std::stoi(spec.substr(2));
        EXPECT_EQ(FirstQuantBoundViolation(v, decoded, bits,
                                           kDefaultQuantChunk, 2.0),
                  -1)
            << spec << " trial " << trial;
      } else if (spec.rfind("topk", 0) == 0) {
        CheckTopKBound(v, decoded, spec);
      } else if (spec.rfind("ef:", 0) == 0) {
        // Zero starting residual: inner bound applies; just sanity-check
        // finiteness here (inner specs are covered above).
        for (float x : decoded) EXPECT_TRUE(std::isfinite(x)) << spec;
      } else {
        FAIL() << "fuzz has no bound for spec '" << spec << "'";
      }
    }
  }
}

TEST(CodecFuzzTest, DoubleEncodeOfSameVectorIsConsistent) {
  // Deterministic codecs: identical bytes. Stochastic: identical under the
  // same stream. Catches hidden global state.
  for (const std::string& spec : UpdateCodecExampleSpecs()) {
    auto c1 = MakeUpdateCodec(spec);
    auto c2 = MakeUpdateCodec(spec);
    ASSERT_TRUE(c1.ok() && c2.ok());
    Rng rng(4242);
    const std::vector<float> v = RandomVector(300, &rng);
    Rng ra(5), rb(5);
    EXPECT_EQ((*c1)->Encode(3, v, &ra).bytes, (*c2)->Encode(3, v, &rb).bytes)
        << spec;
  }
}

}  // namespace
}  // namespace fedadmm
