// Codec ↔ simulator integration: byte accounting derives from the codec's
// WireBytes (uplink/downlink independently), SCAFFOLD's double payload is
// encoded per vector, and compressed payloads measurably shrink the
// virtual-clock round time on a bandwidth-bound fleet.

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "comm/codec.h"
#include "comm/identity.h"
#include "comm/quantize.h"
#include "comm/topk.h"
#include "fl/algorithms/fedavg.h"
#include "fl/algorithms/scaffold.h"
#include "fl/quadratic_problem.h"
#include "fl/selection.h"
#include "fl/simulation.h"
#include "sys/system_model.h"

namespace fedadmm {
namespace {

constexpr int kClients = 8;
constexpr int64_t kDim = 300;  // spans multiple quant chunks

QuadraticSpec Spec() {
  QuadraticSpec spec;
  spec.num_clients = kClients;
  spec.dim = static_cast<int>(kDim);
  spec.heterogeneity = 1.0;
  spec.seed = 3;
  return spec;
}

LocalTrainSpec Local() {
  LocalTrainSpec local;
  local.learning_rate = 0.02f;
  local.batch_size = 0;
  local.max_epochs = 2;
  local.variable_epochs = false;
  return local;
}

History RunFedAvg(UpdateCodec* uplink, UpdateCodec* downlink,
                  const SystemModel* model = nullptr, int rounds = 3) {
  QuadraticProblem problem(Spec());
  FedAvg algo(Local());
  UniformFractionSelector selector(kClients, 0.5);
  SimulationConfig config;
  config.max_rounds = rounds;
  config.seed = 9;
  config.num_threads = 2;
  Simulation sim(&problem, &algo, &selector, config);
  if (uplink) sim.set_uplink_codec(uplink);
  if (downlink) sim.set_downlink_codec(downlink);
  if (model) sim.set_system_model(model);
  return std::move(sim.Run()).ValueOrDie();
}

TEST(SimulationCodecTest, UplinkOnlyCompressionIsAsymmetric) {
  UniformQuantCodec q8(8);
  const History history = RunFedAvg(&q8, nullptr);
  const int64_t wire = q8.WireBytes(kDim);
  const int64_t raw = kDim * 4;
  ASSERT_LT(wire, raw);
  for (const RoundRecord& r : history.records()) {
    // Uplink billed at codec wire size, downlink still raw fp32.
    EXPECT_EQ(r.upload_bytes, r.num_selected * wire);
    EXPECT_EQ(r.download_bytes, r.num_selected * raw);
    EXPECT_LT(r.upload_bytes, r.download_bytes);
    // Raw columns keep the uncompressed equivalents for both directions.
    EXPECT_EQ(r.upload_bytes_raw, r.num_selected * raw);
    EXPECT_EQ(r.download_bytes_raw, r.num_selected * raw);
  }
}

TEST(SimulationCodecTest, DownlinkOnlyCompressionIsAsymmetric) {
  UniformQuantCodec q8(8);
  const History history = RunFedAvg(nullptr, &q8);
  const int64_t wire = q8.WireBytes(kDim);
  const int64_t raw = kDim * 4;
  for (const RoundRecord& r : history.records()) {
    EXPECT_EQ(r.upload_bytes, r.num_selected * raw);
    EXPECT_EQ(r.download_bytes, r.num_selected * wire);
    EXPECT_GT(r.upload_bytes, r.download_bytes);
    EXPECT_EQ(r.download_bytes_raw, r.num_selected * raw);
  }
}

TEST(SimulationCodecTest, ScaffoldEncodesBothPayloadVectors) {
  QuadraticProblem problem(Spec());
  Scaffold algo(Local());
  UniformFractionSelector selector(kClients, 0.5);
  SimulationConfig config;
  config.max_rounds = 2;
  config.seed = 9;
  config.num_threads = 2;
  Simulation sim(&problem, &algo, &selector, config);
  TopKCodec topk(0.1);
  sim.set_uplink_codec(&topk);
  const History history = std::move(sim.Run()).ValueOrDie();
  for (const RoundRecord& r : history.records()) {
    // delta and the control delta are separate payloads on the wire.
    EXPECT_EQ(r.upload_bytes, r.num_selected * 2 * topk.WireBytes(kDim));
    EXPECT_EQ(r.upload_bytes_raw, r.num_selected * 2 * kDim * 4);
    // SCAFFOLD's broadcast is 2d raw (no downlink codec attached).
    EXPECT_EQ(r.download_bytes, r.num_selected * 2 * kDim * 4);
  }
}

// A bandwidth-bound fleet: 1 KB/s uplink, generous downlink, no latency —
// upload time dominates the round, so compression must shrink sim_seconds.
SystemModel BandwidthBoundModel() {
  ClientSystemProfile profile;
  profile.device.steps_per_second = 1e6;
  profile.network.upload_bytes_per_second = 1.0e3;
  profile.network.download_bytes_per_second = 1.0e6;
  profile.network.latency_seconds = 0.0;
  std::vector<ClientSystemProfile> profiles(
      static_cast<size_t>(kClients), profile);
  return SystemModel(FleetModel(std::move(profiles), "bandwidth-bound"),
                     std::make_unique<WaitForAllPolicy>());
}

TEST(SimulationCodecTest, CompressionShrinksVirtualClockTime) {
  const SystemModel model = BandwidthBoundModel();
  IdentityCodec identity;
  UniformQuantCodec q8(8);
  TopKCodec topk(0.1);
  const double t_identity =
      RunFedAvg(&identity, nullptr, &model).TotalSimSeconds();
  const double t_q8 = RunFedAvg(&q8, nullptr, &model).TotalSimSeconds();
  const double t_topk = RunFedAvg(&topk, nullptr, &model).TotalSimSeconds();
  // Raw: 1200 B/client/round at 1 KB/s. q8 cuts ~4x, topk10 ~5x here.
  EXPECT_LT(t_q8, t_identity);
  EXPECT_LT(t_topk, t_q8);
  // The clock charges wire/bandwidth per round (3 rounds, critical path =
  // any client: homogeneous fleet); compute at 1e6 steps/s is noise-level.
  EXPECT_NEAR(t_identity,
              3.0 * (static_cast<double>(kDim * 4) / 1.0e3 +
                     static_cast<double>(kDim * 4) / 1.0e6),
              1e-3);
  EXPECT_NEAR(t_q8,
              3.0 * (static_cast<double>(q8.WireBytes(kDim)) / 1.0e3 +
                     static_cast<double>(kDim * 4) / 1.0e6),
              1e-3);
}

TEST(SimulationCodecTest, FactoryCodecsRunEndToEnd) {
  for (const std::string& spec : UpdateCodecExampleSpecs()) {
    auto codec = MakeUpdateCodec(spec);
    ASSERT_TRUE(codec.ok()) << spec;
    const History history = RunFedAvg(codec->get(), nullptr);
    EXPECT_EQ(history.size(), 3) << spec;
    const int64_t wire = (*codec)->WireBytes(kDim);
    for (const RoundRecord& r : history.records()) {
      EXPECT_EQ(r.upload_bytes, r.num_selected * wire) << spec;
    }
  }
}

}  // namespace
}  // namespace fedadmm
