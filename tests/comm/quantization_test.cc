// Uniform (deterministic) quantization properties: the documented error
// bound |Decode(Encode(v)) - v| <= scale_chunk / (2^b - 1), chunk isolation
// (an outlier only coarsens its own chunk), and exactness at the grid's
// fixed points.

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "comm/codec_test_util.h"
#include "comm/quantize.h"

namespace fedadmm {
namespace {

using testing::FirstQuantBoundViolation;
using testing::RandomVector;

TEST(UniformQuantTest, ErrorWithinHalfGridStepEveryBitWidth) {
  Rng rng(11);
  for (int bits : {1, 2, 4, 8, 12, 16}) {
    UniformQuantCodec codec(bits);
    for (size_t dim : {1u, 255u, 256u, 257u, 2000u}) {
      const std::vector<float> v = RandomVector(dim, &rng);
      const std::vector<float> decoded =
          codec.Decode(codec.Encode(0, v, nullptr));
      ASSERT_EQ(decoded.size(), v.size());
      EXPECT_EQ(FirstQuantBoundViolation(v, decoded, bits, codec.chunk(),
                                         /*steps=*/1.0),
                -1)
          << "bits=" << bits << " dim=" << dim;
    }
  }
}

TEST(UniformQuantTest, AllZeroVectorDecodesExactly) {
  UniformQuantCodec codec(8);
  const std::vector<float> zeros(777, 0.0f);
  const std::vector<float> decoded =
      codec.Decode(codec.Encode(0, zeros, nullptr));
  EXPECT_EQ(decoded, zeros);
}

TEST(UniformQuantTest, GridEndpointsAreExact) {
  // +scale, -scale and 0 sit on the grid for every odd-level count... only
  // the endpoints are guaranteed for even L; check those.
  UniformQuantCodec codec(8);
  std::vector<float> v(10, 0.0f);
  v[3] = 2.5f;   // chunk max: +scale, exact
  v[7] = -2.5f;  // -scale, exact
  const std::vector<float> decoded =
      codec.Decode(codec.Encode(0, v, nullptr));
  EXPECT_FLOAT_EQ(decoded[3], 2.5f);
  EXPECT_FLOAT_EQ(decoded[7], -2.5f);
}

TEST(UniformQuantTest, ChunksQuantizeIndependently) {
  // A huge outlier in chunk 0 must not coarsen chunk 1: values there keep
  // the fine grid of their own (small) scale.
  const int chunk = 4;
  UniformQuantCodec codec(8, chunk);
  std::vector<float> v = {1e30f, 0.5f, -0.25f, 0.125f,   // chunk 0: outlier
                          0.5f, -0.25f, 0.125f, 0.0625f};  // chunk 1: small
  const std::vector<float> decoded =
      codec.Decode(codec.Encode(0, v, nullptr));
  // Chunk 0's small entries got crushed by the outlier's grid...
  EXPECT_NEAR(decoded[1], 0.0f, 1.001 * 1e30 / 255.0);
  // ...but chunk 1's identical values survive at their own scale.
  const double fine_bound = 0.5 / 255.0 * 1.001;
  EXPECT_NEAR(decoded[4], 0.5f, fine_bound);
  EXPECT_NEAR(decoded[5], -0.25f, fine_bound);
  EXPECT_NEAR(decoded[6], 0.125f, fine_bound);
}

TEST(UniformQuantTest, Fp16StyleBoundIsTight) {
  // b = 16: error <= scale / 65535 — over 100x tighter than 8-bit.
  Rng rng(13);
  UniformQuantCodec q16(16);
  const std::vector<float> v = RandomVector(1000, &rng);
  const std::vector<float> decoded = q16.Decode(q16.Encode(0, v, nullptr));
  EXPECT_EQ(
      FirstQuantBoundViolation(v, decoded, 16, q16.chunk(), /*steps=*/1.0),
      -1);
}

TEST(UniformQuantTest, OneBitKeepsOnlySignAtFullScale) {
  // b = 1 is signSGD-with-magnitude: every value snaps to ±scale.
  UniformQuantCodec codec(1);
  const std::vector<float> v = {0.9f, -0.9f, 0.6f, -0.6f};
  const std::vector<float> decoded =
      codec.Decode(codec.Encode(0, v, nullptr));
  for (size_t i = 0; i < v.size(); ++i) {
    EXPECT_FLOAT_EQ(std::fabs(decoded[i]), 0.9f) << i;
    EXPECT_EQ(std::signbit(decoded[i]), std::signbit(v[i])) << i;
  }
}

TEST(UniformQuantTest, EncodingIsDeterministic) {
  Rng rng(17);
  UniformQuantCodec codec(8);
  const std::vector<float> v = RandomVector(513, &rng);
  EXPECT_EQ(codec.Encode(0, v, nullptr).bytes,
            codec.Encode(0, v, nullptr).bytes);
}

TEST(UniformQuantDeathTest, OutOfRangeBitsAbortBeforeComputingLevels) {
  // The bits check must run before L = 2^bits - 1 is computed: bits = 32
  // (or negative) would otherwise shift past the width of int — undefined
  // behavior in a member initializer, unreachable by the ctor-body CHECK.
  EXPECT_DEATH(UniformQuantCodec codec(0), "bits in \\[1, 16\\]");
  EXPECT_DEATH(UniformQuantCodec codec(17), "bits in \\[1, 16\\]");
  EXPECT_DEATH(UniformQuantCodec codec(32), "bits in \\[1, 16\\]");
  EXPECT_DEATH(UniformQuantCodec codec(-1), "bits in \\[1, 16\\]");
}

TEST(UniformQuantDeathTest, NonPositiveChunkAborts) {
  EXPECT_DEATH(UniformQuantCodec codec(8, 0), "chunk >= 1");
}

}  // namespace
}  // namespace fedadmm
