// Wire-format accounting: WireBytes(dim) must equal the serialized payload
// size *exactly* for every codec and every dimension — the virtual clock
// bills these numbers, so an off-by-one here silently skews every
// time-to-accuracy result. Chunk-boundary dims are the classic failure.

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "comm/codec.h"
#include "comm/identity.h"
#include "comm/quantize.h"
#include "comm/topk.h"
#include "comm/codec_test_util.h"

namespace fedadmm {
namespace {

using testing::RandomVector;

const std::vector<int64_t>& TestDims() {
  // Chunk boundaries (255/256/257), bit-packing remainders, and extremes.
  static const std::vector<int64_t> kDims = {0,  1,   2,   3,   7,    8,
                                             63, 255, 256, 257, 1000, 4096};
  return kDims;
}

class WireFormatTest : public ::testing::TestWithParam<std::string> {};

TEST_P(WireFormatTest, WireBytesMatchesSerializedSizeExactly) {
  Rng rng(41);
  for (int64_t dim : TestDims()) {
    auto codec = MakeUpdateCodec(GetParam());
    ASSERT_TRUE(codec.ok()) << GetParam();
    const std::vector<float> v =
        RandomVector(static_cast<size_t>(dim), &rng);
    Rng encode_rng = rng.Fork(7, static_cast<uint64_t>(dim));
    const Payload payload =
        (*codec)->Encode(/*stream=*/0, v, &encode_rng);
    EXPECT_EQ(payload.WireBytes(),
              static_cast<int64_t>(payload.bytes.size()));
    EXPECT_EQ((*codec)->WireBytes(dim), payload.WireBytes())
        << GetParam() << " dim=" << dim;
  }
}

TEST_P(WireFormatTest, PayloadIsSelfDescribing) {
  Rng rng(43);
  for (int64_t dim : TestDims()) {
    auto codec = MakeUpdateCodec(GetParam());
    ASSERT_TRUE(codec.ok()) << GetParam();
    const std::vector<float> v =
        RandomVector(static_cast<size_t>(dim), &rng);
    Rng encode_rng = rng.Fork(9, static_cast<uint64_t>(dim));
    const Payload payload = (*codec)->Encode(0, v, &encode_rng);
    // Decode sees only bytes — the dimension must travel in them.
    EXPECT_EQ((*codec)->Decode(payload).size(), v.size())
        << GetParam() << " dim=" << dim;
  }
}

TEST_P(WireFormatTest, NameRoundTripsThroughFactory) {
  auto codec = MakeUpdateCodec(GetParam());
  ASSERT_TRUE(codec.ok());
  auto again = MakeUpdateCodec((*codec)->name());
  ASSERT_TRUE(again.ok()) << (*codec)->name();
  EXPECT_EQ((*again)->name(), (*codec)->name());
  EXPECT_EQ((*again)->WireBytes(1000), (*codec)->WireBytes(1000));
}

INSTANTIATE_TEST_SUITE_P(AllCodecs, WireFormatTest,
                         ::testing::ValuesIn(UpdateCodecExampleSpecs()),
                         [](const auto& info) {
                           std::string n = info.param;
                           for (char& c : n) {
                             if (c == ':') c = '_';
                           }
                           return n;
                         });

TEST(WireFormatSizesTest, IdentityIsExactlyRawFp32) {
  IdentityCodec codec;
  for (int64_t dim : TestDims()) {
    EXPECT_EQ(codec.WireBytes(dim), 4 * dim);
  }
}

TEST(WireFormatSizesTest, TopKIsHeaderPlusIndexValuePairs) {
  TopKCodec codec(0.1);
  EXPECT_EQ(codec.WireBytes(0), 16);        // bare header
  EXPECT_EQ(codec.WireBytes(1), 16 + 8);    // k clamps up to 1
  EXPECT_EQ(codec.WireBytes(100), 16 + 8 * 10);
  EXPECT_EQ(codec.WireBytes(101), 16 + 8 * 11);  // ceil, not floor
}

TEST(WireFormatSizesTest, QuantIsHeaderPlusPerChunkScaleAndPackedCodes) {
  // 8-bit, chunk 256: dim 257 = header + (4 + 256) + (4 + 1).
  UniformQuantCodec q8(8);
  EXPECT_EQ(q8.WireBytes(257), 8 + (4 + 256) + (4 + 1));
  // 4-bit: packing rounds odd chunk tails up to whole bytes.
  UniformQuantCodec q4(4);
  EXPECT_EQ(q4.WireBytes(3), 8 + 4 + 2);
  // 1-bit: 256-value chunk = 32 code bytes.
  UniformQuantCodec q1(1);
  EXPECT_EQ(q1.WireBytes(256), 8 + 4 + 32);
  // 16-bit ("fp16"): ~2 bytes per value.
  UniformQuantCodec q16(16);
  EXPECT_EQ(q16.WireBytes(256), 8 + 4 + 512);
}

TEST(WireFormatSizesTest, CompressionActuallyCompresses) {
  // The point of the subsystem: everything except identity beats 4d on a
  // realistically sized update.
  const int64_t dim = 100000;
  const int64_t raw = 4 * dim;
  for (const std::string& spec : UpdateCodecExampleSpecs()) {
    if (spec == "identity") continue;
    auto codec = MakeUpdateCodec(spec);
    ASSERT_TRUE(codec.ok());
    EXPECT_LT((*codec)->WireBytes(dim), raw) << spec;
  }
}

TEST(CodecFactoryTest, RejectsMalformedSpecs) {
  for (const char* bad :
       {"", "q", "q0", "q17", "sq99", "topk0", "topk101", "topk", "ef:",
        "ef:ef:q8", "gzip", "q8x", "identity2"}) {
    EXPECT_FALSE(MakeUpdateCodec(bad).ok()) << "'" << bad << "'";
  }
}

TEST(CodecFactoryTest, Fp16IsAnAliasOfQ16) {
  auto fp16 = MakeUpdateCodec("fp16");
  auto q16 = MakeUpdateCodec("q16");
  ASSERT_TRUE(fp16.ok() && q16.ok());
  EXPECT_EQ((*fp16)->name(), "q16");
  EXPECT_EQ((*fp16)->WireBytes(12345), (*q16)->WireBytes(12345));
}

}  // namespace
}  // namespace fedadmm
