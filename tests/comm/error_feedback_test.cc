// Error-feedback wrapper properties. The load-bearing one is residual
// telescoping: sum_t Decode(p_t) = sum_t v_t - r_T, so the server's
// accumulated view trails the uncompressed sum by a *single* round's
// compression error no matter how many rounds ran — lossy codecs become
// "eventually lossless" in the aggregate.

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <vector>

#include "comm/codec_test_util.h"
#include "comm/error_feedback.h"
#include "comm/quantize.h"
#include "comm/topk.h"

namespace fedadmm {
namespace {

using testing::RandomVector;

std::vector<float> GaussianVector(size_t dim, Rng* rng) {
  std::vector<float> v(dim);
  for (float& x : v) x = static_cast<float>(rng->Normal(0.0, 1.0));
  return v;
}

TEST(ErrorFeedbackTest, ResidualTelescopingTopK) {
  // Aggressive 5% sparsifier: plain top-k loses 95% of each round's mass
  // for good; with EF the summed reconstruction tracks the summed input to
  // within the final residual (one round's compression error, not T's).
  const size_t dim = 200;
  const int rounds = 200;
  ErrorFeedbackCodec codec(std::make_unique<TopKCodec>(0.05));
  TopKCodec plain(0.05);
  Rng rng(37);

  std::vector<double> sum_input(dim, 0.0);
  std::vector<double> sum_decoded(dim, 0.0);
  std::vector<double> sum_plain(dim, 0.0);
  for (int t = 0; t < rounds; ++t) {
    const std::vector<float> v = GaussianVector(dim, &rng);
    const std::vector<float> decoded =
        codec.Decode(codec.Encode(/*stream=*/4, v, nullptr));
    const std::vector<float> plain_decoded =
        plain.Decode(plain.Encode(4, v, nullptr));
    for (size_t i = 0; i < dim; ++i) {
      sum_input[i] += v[i];
      sum_decoded[i] += decoded[i];
      sum_plain[i] += plain_decoded[i];
    }
  }
  // Telescoping identity: sum(decoded) = sum(input) - residual_T, exactly
  // (up to float accumulation noise).
  const std::vector<float>& residual = codec.residual(4);
  ASSERT_EQ(residual.size(), dim);
  for (size_t i = 0; i < dim; ++i) {
    EXPECT_NEAR(sum_decoded[i], sum_input[i] - residual[i], 1e-3) << i;
  }
  // The EF aggregate error is the carried residual and plateaus; the plain
  // codec's dropped mass keeps accumulating with sqrt(T).
  double ef_err = 0.0;
  double plain_err = 0.0;
  for (size_t i = 0; i < dim; ++i) {
    ef_err += (sum_input[i] - sum_decoded[i]) * (sum_input[i] - sum_decoded[i]);
    plain_err += (sum_input[i] - sum_plain[i]) * (sum_input[i] - sum_plain[i]);
  }
  EXPECT_LT(ef_err, plain_err);
}

TEST(ErrorFeedbackTest, ResidualEqualsCompensatedMinusDecoded) {
  ErrorFeedbackCodec codec(std::make_unique<UniformQuantCodec>(4));
  Rng rng(41);
  const std::vector<float> v1 = GaussianVector(64, &rng);
  const Payload p1 = codec.Encode(0, v1, nullptr);
  const std::vector<float> d1 = codec.Decode(p1);
  const std::vector<float>& r1 = codec.residual(0);
  for (size_t i = 0; i < v1.size(); ++i) {
    EXPECT_FLOAT_EQ(r1[i], v1[i] - d1[i]) << i;  // round 1: e = v
  }
  // Round 2 compensates: the encoded vector is v2 + r1, so the residual
  // becomes (v2 + r1) - d2.
  const std::vector<float> r1_copy = r1;
  const std::vector<float> v2 = GaussianVector(64, &rng);
  const Payload p2 = codec.Encode(0, v2, nullptr);
  const std::vector<float> d2 = codec.Decode(p2);
  const std::vector<float>& r2 = codec.residual(0);
  for (size_t i = 0; i < v2.size(); ++i) {
    EXPECT_FLOAT_EQ(r2[i], v2[i] + r1_copy[i] - d2[i]) << i;
  }
}

TEST(ErrorFeedbackTest, StreamsCarryIndependentResiduals) {
  ErrorFeedbackCodec codec(std::make_unique<TopKCodec>(0.25));
  const std::vector<float> a = {4.0f, 1.0f, 0.5f, 0.25f};
  const std::vector<float> b = {-8.0f, -2.0f, -1.0f, -0.5f};
  codec.Encode(1, a, nullptr);
  codec.Encode(2, b, nullptr);
  // Stream 1's residual reflects only a's dropped coordinates.
  EXPECT_EQ(codec.residual(1),
            (std::vector<float>{0.0f, 1.0f, 0.5f, 0.25f}));
  EXPECT_EQ(codec.residual(2),
            (std::vector<float>{0.0f, -2.0f, -1.0f, -0.5f}));
  EXPECT_TRUE(codec.residual(99).empty());
}

TEST(ErrorFeedbackTest, DroppedCoordinatesEventuallyTransmit) {
  // A constant input with one dominant coordinate: plain top-1 would
  // starve the others forever; EF's residual grows until each wins a slot.
  ErrorFeedbackCodec codec(std::make_unique<TopKCodec>(0.2));  // k=2 of 6
  const std::vector<float> v = {10.0f, 1.0f, 1.0f, 1.0f, 1.0f, 1.0f};
  std::vector<double> sum_decoded(v.size(), 0.0);
  for (int t = 0; t < 30; ++t) {
    const std::vector<float> d = codec.Decode(codec.Encode(0, v, nullptr));
    for (size_t i = 0; i < v.size(); ++i) sum_decoded[i] += d[i];
  }
  for (size_t i = 1; i < v.size(); ++i) {
    EXPECT_GT(sum_decoded[i], 0.0) << "coordinate " << i << " starved";
  }
}

TEST(ErrorFeedbackTest, DimensionChangeResetsTheStream) {
  ErrorFeedbackCodec codec(std::make_unique<UniformQuantCodec>(2));
  Rng rng(43);
  codec.Encode(0, GaussianVector(32, &rng), nullptr);
  EXPECT_EQ(codec.residual(0).size(), 32u);
  // New dimension: the stale residual must not leak into the new shape.
  const std::vector<float> v = GaussianVector(16, &rng);
  const std::vector<float> d = codec.Decode(codec.Encode(0, v, nullptr));
  EXPECT_EQ(codec.residual(0).size(), 16u);
  for (size_t i = 0; i < v.size(); ++i) {
    EXPECT_FLOAT_EQ(codec.residual(0)[i], v[i] - d[i]) << i;
  }
}

TEST(ErrorFeedbackTest, ResetDropsAllMemory) {
  ErrorFeedbackCodec codec(std::make_unique<TopKCodec>(0.5));
  codec.Encode(0, {1.0f, 2.0f}, nullptr);
  codec.Encode(1, {3.0f, 4.0f}, nullptr);
  codec.Reset();
  EXPECT_TRUE(codec.residual(0).empty());
  EXPECT_TRUE(codec.residual(1).empty());
}

TEST(ErrorFeedbackTest, AccountingAndNameDelegateToInner) {
  ErrorFeedbackCodec codec(std::make_unique<TopKCodec>(0.1));
  TopKCodec inner(0.1);
  EXPECT_EQ(codec.WireBytes(1000), inner.WireBytes(1000));
  EXPECT_EQ(codec.name(), "ef:topk10");
}

}  // namespace
}  // namespace fedadmm
