// Stochastic quantization properties: the full-step error bound, seeded
// bitwise reproducibility (the paper-level requirement: replay must not
// depend on thread count), and unbiasedness of the rounding rule.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "comm/codec_test_util.h"
#include "comm/quantize.h"
#include "core/fedadmm.h"
#include "fl/quadratic_problem.h"
#include "fl/selection.h"
#include "fl/simulation.h"

namespace fedadmm {
namespace {

using testing::FirstQuantBoundViolation;
using testing::RandomVector;

TEST(StochasticQuantTest, ErrorWithinOneGridStep) {
  Rng rng(19);
  for (int bits : {1, 2, 4, 8, 16}) {
    StochasticQuantCodec codec(bits);
    const std::vector<float> v = RandomVector(1500, &rng);
    Rng encode_rng = rng.Fork(1);
    const std::vector<float> decoded =
        codec.Decode(codec.Encode(0, v, &encode_rng));
    EXPECT_EQ(FirstQuantBoundViolation(v, decoded, bits, codec.chunk(),
                                       /*steps=*/2.0),
              -1)
        << "bits=" << bits;
  }
}

TEST(StochasticQuantTest, SameSeedSameBytesBitwise) {
  Rng rng(23);
  StochasticQuantCodec codec(4);
  const std::vector<float> v = RandomVector(1000, &rng);
  Rng r1(77), r2(77), r3(99);
  EXPECT_EQ(codec.Encode(0, v, &r1).bytes, codec.Encode(0, v, &r2).bytes);
  Rng r1b(77);
  EXPECT_NE(codec.Encode(0, v, &r1b).bytes, codec.Encode(0, v, &r3).bytes);
}

TEST(StochasticQuantTest, RoundingIsUnbiasedInExpectation) {
  // Average many independent quantizations of one vector: the mean must
  // approach the input (E[decode] = v conditional on the scale).
  StochasticQuantCodec codec(2);  // coarse grid: bias would be glaring
  std::vector<float> v = {0.7f, -0.3f, 0.1f, -0.9f, 0.5f};
  const int trials = 4000;
  std::vector<double> mean(v.size(), 0.0);
  for (int t = 0; t < trials; ++t) {
    Rng rng(static_cast<uint64_t>(t) + 1000);
    const std::vector<float> decoded =
        codec.Decode(codec.Encode(0, v, &rng));
    for (size_t i = 0; i < v.size(); ++i) mean[i] += decoded[i];
  }
  // Step = 2*scale/L = 0.6; stddev of the mean <= step/(2*sqrt(trials))
  // ~ 0.005. A 4-sigma band stays well clear of flaky territory.
  for (size_t i = 0; i < v.size(); ++i) {
    EXPECT_NEAR(mean[i] / trials, v[i], 0.02) << i;
  }
}

// End-to-end replay: a full federated run with a stochastic uplink codec
// must produce the identical θ regardless of worker thread count — the
// codec draws only from its per-(round, client) forked stream.
std::vector<float> RunThetaWithCodec(uint64_t seed, int threads, int rounds) {
  QuadraticSpec spec;
  spec.num_clients = 12;
  spec.dim = 7;
  spec.heterogeneity = 1.2;
  spec.seed = 91;
  QuadraticProblem problem(spec);
  FedAdmmOptions options;
  options.local.learning_rate = 0.05f;
  options.local.batch_size = 4;
  options.local.max_epochs = 3;
  options.local.variable_epochs = true;
  options.rho = StepSchedule(0.1);
  FedAdmm algo(options);
  UniformFractionSelector selector(12, 0.5);
  SimulationConfig config;
  config.max_rounds = rounds;
  config.seed = seed;
  config.num_threads = threads;
  Simulation sim(&problem, &algo, &selector, config);
  StochasticQuantCodec codec(8);
  sim.set_uplink_codec(&codec);
  EXPECT_TRUE(sim.Run().ok());
  return sim.theta();
}

TEST(StochasticQuantTest, SimulationReplayIndependentOfThreadCount) {
  for (int rounds : {1, 3, 6}) {
    const std::vector<float> serial = RunThetaWithCodec(7, 1, rounds);
    EXPECT_EQ(serial, RunThetaWithCodec(7, 3, rounds))
        << "3-thread run diverged at round " << rounds;
    EXPECT_EQ(serial, RunThetaWithCodec(7, 5, rounds))
        << "5-thread run diverged at round " << rounds;
  }
}

TEST(StochasticQuantTest, QuantizationPerturbsButDoesNotBreakTraining) {
  // The sq8 trajectory differs from the exact one (it is lossy) yet stays
  // finite — a smoke check that decoded updates are sane.
  const std::vector<float> exact = RunThetaWithCodec(7, 1, 6);
  for (float x : exact) EXPECT_TRUE(std::isfinite(x));
}

}  // namespace
}  // namespace fedadmm
