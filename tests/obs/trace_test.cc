// Tracing: TraceScope activation rules, the bounded chrome://tracing
// recorder, and the JSONL round-trace writer.

#include "obs/trace.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "obs/json.h"

namespace fedadmm::obs {
namespace {

std::string ReadAll(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

std::string TempPath(const char* name) {
  return testing::TempDir() + "/" + name;
}

TEST(TraceScopeTest, InactiveWithoutAnySink) {
  ASSERT_FALSE(MetricsRegistry::Global().enabled());
  ASSERT_FALSE(TraceRecorder::Global().enabled());
  TraceScope scope("noop", "test");
  EXPECT_EQ(scope.Stop(), 0.0);
}

TEST(TraceScopeTest, ForceTimingMeasuresWithoutSinks) {
  TraceScope scope("forced", "test", nullptr, /*force_timing=*/true);
  const double seconds = scope.Stop();
  EXPECT_GE(seconds, 0.0);
  // Stop is idempotent: the second call reports the scope inactive.
  EXPECT_EQ(scope.Stop(), 0.0);
}

TEST(TraceScopeTest, FeedsHistogramWhenMetricsEnabled) {
  MetricsRegistry registry;  // private registry: no global state leaks
  Histogram* hist = registry.histogram("scope_seconds");
  {
    // The scope consults the GLOBAL enabled flag; flip it around the span.
    MetricsRegistry::Global().set_enabled(true);
    TraceScope scope("span", "test", hist);
    scope.Stop();
    MetricsRegistry::Global().set_enabled(false);
  }
  EXPECT_EQ(hist->Stats().count, 1);
}

TEST(TraceScopeTest, SkipsHistogramWhenMetricsDisabled) {
  MetricsRegistry registry;
  Histogram* hist = registry.histogram("scope_seconds");
  ASSERT_FALSE(MetricsRegistry::Global().enabled());
  {
    TraceScope scope("span", "test", hist);
  }
  EXPECT_EQ(hist->Stats().count, 0);
}

TEST(TraceRecorderTest, CapturesScopesAndWritesChromeTrace) {
  TraceRecorder& recorder = TraceRecorder::Global();
  recorder.Start();
  {
    TraceScope scope("outer", "test");
    scope.set_arg("round", 3);
    TraceScope inner("inner", "test");
  }
  recorder.Stop();
  EXPECT_EQ(recorder.size(), 2u);
  EXPECT_EQ(recorder.dropped(), 0u);

  const std::string path = TempPath("trace_test_chrome.json");
  ASSERT_TRUE(recorder.WriteChromeTrace(path).ok());
  auto doc = ParseJson(ReadAll(path));
  ASSERT_TRUE(doc.ok()) << doc.status().message();
  const JsonValue& value = doc.ValueOrDie();
  const JsonValue* events = value.Find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_EQ(events->elements.size(), 2u);
  // Completed-event format chrome://tracing/perfetto load directly.
  for (const JsonValue& event : events->elements) {
    EXPECT_EQ(event.Find("ph")->string, "X");
    EXPECT_TRUE(event.Find("ts")->is_number());
    EXPECT_TRUE(event.Find("dur")->is_number());
    EXPECT_TRUE(event.Find("tid")->is_number());
  }
  // Inner scope closed first, so it is recorded first.
  EXPECT_EQ(events->elements[0].Find("name")->string, "inner");
  EXPECT_EQ(events->elements[1].Find("name")->string, "outer");
  EXPECT_EQ(events->elements[1].Find("args")->Find("round")->number, 3.0);
  std::remove(path.c_str());
}

TEST(TraceRecorderTest, BoundedBufferCountsDrops) {
  TraceRecorder& recorder = TraceRecorder::Global();
  recorder.Start(/*max_events=*/2);
  for (int i = 0; i < 5; ++i) {
    TraceScope scope("evt", "test");
  }
  recorder.Stop();
  EXPECT_EQ(recorder.size(), 2u);
  EXPECT_EQ(recorder.dropped(), 3u);

  const std::string path = TempPath("trace_test_dropped.json");
  ASSERT_TRUE(recorder.WriteChromeTrace(path).ok());
  auto doc = ParseJson(ReadAll(path));
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc.ValueOrDie().Find("droppedEvents")->number, 3.0);
  std::remove(path.c_str());
}

TEST(TraceRecorderTest, StartClearsPreviousCapture) {
  TraceRecorder& recorder = TraceRecorder::Global();
  recorder.Start();
  {
    TraceScope scope("first", "test");
  }
  recorder.Stop();
  ASSERT_GE(recorder.size(), 1u);
  recorder.Start();
  recorder.Stop();
  EXPECT_EQ(recorder.size(), 0u);
}

TEST(RoundTraceWriterTest, AppendsJsonlLines) {
  const std::string path = TempPath("round_trace_test.jsonl");
  RoundTraceWriter writer;
  ASSERT_TRUE(writer.Open(path).ok());
  EXPECT_TRUE(writer.is_open());
  EXPECT_FALSE(writer.deterministic_only());
  ASSERT_TRUE(writer.Append("{\"round\":0}").ok());
  ASSERT_TRUE(writer.Append("{\"round\":1}").ok());
  ASSERT_TRUE(writer.Close().ok());
  EXPECT_FALSE(writer.is_open());

  std::ifstream in(path);
  std::string line;
  int rounds = 0;
  while (std::getline(in, line)) {
    auto doc = ParseJson(line);
    ASSERT_TRUE(doc.ok()) << line;
    EXPECT_EQ(doc.ValueOrDie().Find("round")->number, rounds);
    ++rounds;
  }
  EXPECT_EQ(rounds, 2);
  std::remove(path.c_str());
}

TEST(RoundTraceWriterTest, DeterministicOnlyFlagSticks) {
  const std::string path = TempPath("round_trace_det.jsonl");
  RoundTraceWriter writer;
  ASSERT_TRUE(writer.Open(path, /*deterministic_only=*/true).ok());
  EXPECT_TRUE(writer.deterministic_only());
  ASSERT_TRUE(writer.Close().ok());
  std::remove(path.c_str());
}

TEST(RoundTraceWriterTest, OpenFailsOnBadPath) {
  RoundTraceWriter writer;
  EXPECT_FALSE(writer.Open("/nonexistent-dir-xyz/trace.jsonl").ok());
  EXPECT_FALSE(writer.is_open());
}

}  // namespace
}  // namespace fedadmm::obs
