// The obs JSON dialect: both ends of every BENCH_*.json / trace artifact
// are this library, so the writer and the parser are tested against each
// other (round-trips) and against hand-written documents.

#include "obs/json.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

namespace fedadmm::obs {
namespace {

TEST(JsonWriterTest, FlatObject) {
  JsonWriter w;
  w.BeginObject().Key("a").Int(1).Key("b").String("x").EndObject();
  EXPECT_EQ(w.str(), "{\"a\":1,\"b\":\"x\"}");
  EXPECT_TRUE(w.complete());
}

TEST(JsonWriterTest, NestedArraysAndObjects) {
  JsonWriter w;
  w.BeginObject();
  w.Key("rows").BeginArray();
  w.BeginObject().Key("v").Bool(true).EndObject();
  w.Int(7);
  w.Null();
  w.EndArray();
  w.EndObject();
  EXPECT_EQ(w.str(), "{\"rows\":[{\"v\":true},7,null]}");
}

TEST(JsonWriterTest, EscapesStrings) {
  JsonWriter w;
  w.String("a\"b\\c\n\t");
  EXPECT_EQ(w.str(), "\"a\\\"b\\\\c\\n\\t\"");
}

TEST(JsonWriterTest, NanAndInfinityBecomeNull) {
  JsonWriter w;
  w.BeginArray()
      .Double(std::numeric_limits<double>::quiet_NaN())
      .Double(std::numeric_limits<double>::infinity())
      .Double(1.5)
      .EndArray();
  EXPECT_EQ(w.str(), "[null,null,1.5]");
}

TEST(JsonWriterTest, DoublesRoundTripBitwise) {
  const double value = 0.1 + 0.2;  // not representable exactly
  JsonWriter w;
  w.Double(value);
  auto parsed = ParseJson(w.str());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.ValueOrDie().number, value);
}

TEST(JsonParserTest, ParsesScalars) {
  EXPECT_EQ(ParseJson("true").ValueOrDie().bool_value, true);
  EXPECT_TRUE(ParseJson("null").ValueOrDie().is_null());
  EXPECT_EQ(ParseJson("-2.5e2").ValueOrDie().number, -250.0);
  EXPECT_EQ(ParseJson("\"hi\\u0041\"").ValueOrDie().string, "hiA");
}

TEST(JsonParserTest, PreservesObjectOrderAndFind) {
  auto doc = ParseJson("{\"z\":1,\"a\":2,\"z\":3}");
  ASSERT_TRUE(doc.ok());
  const JsonValue& value = doc.ValueOrDie();
  ASSERT_EQ(value.members.size(), 3u);
  EXPECT_EQ(value.members[0].first, "z");
  EXPECT_EQ(value.members[1].first, "a");
  // Find returns the FIRST member with the key.
  ASSERT_NE(value.Find("z"), nullptr);
  EXPECT_EQ(value.Find("z")->number, 1.0);
  EXPECT_EQ(value.Find("missing"), nullptr);
}

TEST(JsonParserTest, RejectsMalformedInput) {
  EXPECT_FALSE(ParseJson("").ok());
  EXPECT_FALSE(ParseJson("{").ok());
  EXPECT_FALSE(ParseJson("[1,]").ok());
  EXPECT_FALSE(ParseJson("{\"a\":}").ok());
  EXPECT_FALSE(ParseJson("tru").ok());
  EXPECT_FALSE(ParseJson("1 2").ok()) << "trailing garbage must fail";
}

TEST(JsonParserTest, RejectsRunawayNesting) {
  std::string deep(100, '[');
  EXPECT_FALSE(ParseJson(deep).ok());
}

TEST(JsonRoundTripTest, WriterOutputParsesBack) {
  JsonWriter w;
  w.BeginObject();
  w.Key("bench").String("kernels");
  w.Key("metrics").BeginObject();
  w.Key("p50_us").Double(12.25);
  w.Key("count").Int(42);
  w.EndObject();
  w.Key("tags").BeginArray().String("a\"b").String("c").EndArray();
  w.EndObject();

  auto doc = ParseJson(w.str());
  ASSERT_TRUE(doc.ok());
  const JsonValue& value = doc.ValueOrDie();
  EXPECT_EQ(value.Find("bench")->string, "kernels");
  EXPECT_EQ(value.Find("metrics")->Find("p50_us")->number, 12.25);
  EXPECT_EQ(value.Find("metrics")->Find("count")->number, 42.0);
  ASSERT_EQ(value.Find("tags")->elements.size(), 2u);
  EXPECT_EQ(value.Find("tags")->elements[0].string, "a\"b");
}

}  // namespace
}  // namespace fedadmm::obs
