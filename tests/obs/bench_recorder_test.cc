// The perf rail end to end in memory: recorder schema, context embedding,
// histogram unpacking, and the bench_diff gate semantics
// (deterministic / wall-clock / informational metric classes).

#include "obs/bench_recorder.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "obs/bench_compare.h"
#include "obs/json.h"

namespace fedadmm::obs {
namespace {

TEST(BenchRecorderTest, SchemaShape) {
  BenchRecorder recorder("kernels");
  recorder.AddContext("preset", "mid");
  recorder.AddContext("num_shards", int64_t{4});
  BenchResult* row = recorder.AddResult("axpy/d=1024");
  row->AddMetric("total_bytes", int64_t{4096});
  row->AddMetric("speedup", 1.8);

  auto doc = ParseJson(recorder.ToJson());
  ASSERT_TRUE(doc.ok()) << doc.status().message();
  const JsonValue& value = doc.ValueOrDie();
  EXPECT_EQ(value.Find("bench")->string, "kernels");
  EXPECT_EQ(value.Find("schema_version")->number, 1.0);
  EXPECT_EQ(value.Find("context")->Find("preset")->string, "mid");
  EXPECT_EQ(value.Find("context")->Find("num_shards")->string, "4");
  ASSERT_EQ(value.Find("results")->elements.size(), 1u);
  const JsonValue& result = value.Find("results")->elements[0];
  EXPECT_EQ(result.Find("name")->string, "axpy/d=1024");
  EXPECT_EQ(result.Find("metrics")->Find("total_bytes")->number, 4096.0);
  EXPECT_EQ(result.Find("metrics")->Find("speedup")->number, 1.8);
}

TEST(BenchRecorderTest, NanMetricSerializesAsNull) {
  BenchRecorder recorder("b");
  recorder.AddResult("r")->AddMetric("rounds_to_target_rounds",
                                     std::nan(""));
  auto doc = ParseJson(recorder.ToJson());
  ASSERT_TRUE(doc.ok());
  EXPECT_TRUE(doc.ValueOrDie()
                  .Find("results")
                  ->elements[0]
                  .Find("metrics")
                  ->Find("rounds_to_target_rounds")
                  ->is_null());
}

TEST(BenchRecorderTest, ContextAndMetricsAreSorted) {
  BenchRecorder recorder("b");
  recorder.AddContext("z", "1");
  recorder.AddContext("a", "2");
  BenchResult* row = recorder.AddResult("r");
  row->AddMetric("z_bytes", int64_t{1});
  row->AddMetric("a_bytes", int64_t{2});
  const std::string json = recorder.ToJson();
  EXPECT_LT(json.find("\"a\""), json.find("\"z\""));
  EXPECT_LT(json.find("a_bytes"), json.find("z_bytes"));
}

TEST(BenchRecorderTest, AddLatencyMetricsUnpacksHistogram) {
  Histogram h;
  h.Record(1e-4);
  h.Record(1e-3);
  BenchRecorder recorder("b");
  BenchResult* row = recorder.AddResult("r");
  row->AddLatencyMetrics("round", "_wall_seconds", h.Stats());
  const auto& metrics = row->metrics();
  EXPECT_EQ(metrics.at("round_count"), 2.0);
  EXPECT_DOUBLE_EQ(metrics.at("round_max_wall_seconds"), 1e-3);
  EXPECT_DOUBLE_EQ(metrics.at("round_p50_wall_seconds"), 1e-4);
  EXPECT_GT(metrics.at("round_mean_wall_seconds"), 0.0);
  EXPECT_TRUE(metrics.count("round_p90_wall_seconds"));
  EXPECT_TRUE(metrics.count("round_p99_wall_seconds"));
}

// ---- gate semantics (obs/bench_compare.h) ----

TEST(ClassifyMetricTest, SuffixContract) {
  EXPECT_EQ(ClassifyMetric("upload_bytes"), MetricClass::kDeterministic);
  EXPECT_EQ(ClassifyMetric("round_count"), MetricClass::kDeterministic);
  EXPECT_EQ(ClassifyMetric("to_target_rounds"), MetricClass::kDeterministic);
  EXPECT_EQ(ClassifyMetric("time_sim_seconds"), MetricClass::kDeterministic);
  EXPECT_EQ(ClassifyMetric("round_wall_seconds"), MetricClass::kWallClock);
  EXPECT_EQ(ClassifyMetric("p99_us"), MetricClass::kWallClock);
  EXPECT_EQ(ClassifyMetric("final_accuracy"), MetricClass::kInformational);
  EXPECT_EQ(ClassifyMetric("speedup"), MetricClass::kInformational);
}

std::string Doc(double bytes, double wall, double accuracy) {
  BenchRecorder recorder("gate");
  recorder.AddContext("preset", "small");
  BenchResult* row = recorder.AddResult("r");
  row->AddMetric("upload_bytes", bytes);
  row->AddMetric("round_wall_seconds", wall);
  row->AddMetric("final_accuracy", accuracy);
  return recorder.ToJson();
}

TEST(BenchCompareTest, IdenticalDocsPass) {
  const std::string doc = Doc(1000, 0.5, 0.9);
  auto report = CompareBenchJson(doc, doc, BenchCompareOptions{});
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report.ValueOrDie().ok);
  EXPECT_EQ(report.ValueOrDie().metrics_gated, 2);
}

TEST(BenchCompareTest, DeterministicDriftFailsAtZeroTolerance) {
  auto report = CompareBenchJson(Doc(1000, 0.5, 0.9), Doc(1001, 0.5, 0.9),
                                 BenchCompareOptions{});
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(report.ValueOrDie().ok);
  ASSERT_EQ(report.ValueOrDie().failures.size(), 1u);
  EXPECT_NE(report.ValueOrDie().failures[0].find("upload_bytes"),
            std::string::npos);
}

TEST(BenchCompareTest, DeterministicImprovementAlsoFails) {
  // 0% tolerance gates BOTH directions: fewer bytes than baseline still
  // means the binary changed behavior and the baseline must be re-pinned.
  auto report = CompareBenchJson(Doc(1000, 0.5, 0.9), Doc(900, 0.5, 0.9),
                                 BenchCompareOptions{});
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(report.ValueOrDie().ok);
}

TEST(BenchCompareTest, WallClockRegressionPastToleranceFails) {
  BenchCompareOptions options;
  options.tolerance_pct = 25.0;
  auto ok_report =
      CompareBenchJson(Doc(1000, 0.5, 0.9), Doc(1000, 0.6, 0.9), options);
  ASSERT_TRUE(ok_report.ok());
  EXPECT_TRUE(ok_report.ValueOrDie().ok) << "20% is within the 25% gate";

  auto fail_report =
      CompareBenchJson(Doc(1000, 0.5, 0.9), Doc(1000, 0.7, 0.9), options);
  ASSERT_TRUE(fail_report.ok());
  EXPECT_FALSE(fail_report.ValueOrDie().ok) << "40% must fail";
}

TEST(BenchCompareTest, WallClockImprovementAlwaysPasses) {
  auto report = CompareBenchJson(Doc(1000, 0.5, 0.9), Doc(1000, 0.1, 0.9),
                                 BenchCompareOptions{});
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report.ValueOrDie().ok);
}

TEST(BenchCompareTest, InformationalDriftIsNotedNotFailed) {
  auto report = CompareBenchJson(Doc(1000, 0.5, 0.9), Doc(1000, 0.5, 0.7),
                                 BenchCompareOptions{});
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report.ValueOrDie().ok);
  EXPECT_FALSE(report.ValueOrDie().notes.empty());
}

TEST(BenchCompareTest, MissingResultIsCoverageLoss) {
  BenchRecorder fresh("gate");
  fresh.AddContext("preset", "small");
  auto report = CompareBenchJson(Doc(1000, 0.5, 0.9), fresh.ToJson(),
                                 BenchCompareOptions{});
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(report.ValueOrDie().ok);
}

TEST(BenchCompareTest, NewResultIsNoted) {
  BenchRecorder fresh("gate");
  fresh.AddContext("preset", "small");
  BenchResult* row = fresh.AddResult("r");
  row->AddMetric("upload_bytes", 1000.0);
  row->AddMetric("round_wall_seconds", 0.5);
  row->AddMetric("final_accuracy", 0.9);
  fresh.AddResult("r2")->AddMetric("upload_bytes", 1.0);
  auto report = CompareBenchJson(Doc(1000, 0.5, 0.9), fresh.ToJson(),
                                 BenchCompareOptions{});
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report.ValueOrDie().ok);
  EXPECT_FALSE(report.ValueOrDie().notes.empty());
}

TEST(BenchCompareTest, ContextMismatchFailsUnlessAllowed) {
  BenchRecorder other("gate");
  other.AddContext("preset", "LARGE");
  BenchResult* row = other.AddResult("r");
  row->AddMetric("upload_bytes", 1000.0);
  row->AddMetric("round_wall_seconds", 0.5);
  row->AddMetric("final_accuracy", 0.9);

  auto strict = CompareBenchJson(Doc(1000, 0.5, 0.9), other.ToJson(),
                                 BenchCompareOptions{});
  ASSERT_TRUE(strict.ok());
  EXPECT_FALSE(strict.ValueOrDie().ok);

  BenchCompareOptions relaxed;
  relaxed.require_context_match = false;
  auto loose =
      CompareBenchJson(Doc(1000, 0.5, 0.9), other.ToJson(), relaxed);
  ASSERT_TRUE(loose.ok());
  EXPECT_TRUE(loose.ValueOrDie().ok);
}

TEST(BenchCompareTest, GatedMetricGoingNullFails) {
  BenchRecorder fresh("gate");
  fresh.AddContext("preset", "small");
  BenchResult* row = fresh.AddResult("r");
  row->AddMetric("upload_bytes", std::nan(""));
  row->AddMetric("round_wall_seconds", 0.5);
  row->AddMetric("final_accuracy", 0.9);
  auto report = CompareBenchJson(Doc(1000, 0.5, 0.9), fresh.ToJson(),
                                 BenchCompareOptions{});
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(report.ValueOrDie().ok);
}

TEST(BenchCompareTest, MalformedDocumentIsInvalidArgument) {
  auto report =
      CompareBenchJson("{", Doc(1000, 0.5, 0.9), BenchCompareOptions{});
  EXPECT_FALSE(report.ok());
  auto not_bench =
      CompareBenchJson("{\"x\":1}", Doc(1, 1, 1), BenchCompareOptions{});
  EXPECT_FALSE(not_bench.ok());
}

TEST(BenchCompareTest, FileRoundTrip) {
  const std::string base_path = testing::TempDir() + "/bench_base.json";
  const std::string fresh_path = testing::TempDir() + "/bench_fresh.json";
  BenchRecorder recorder("gate");
  recorder.AddContext("preset", "small");
  recorder.AddResult("r")->AddMetric("upload_bytes", int64_t{1000});
  ASSERT_TRUE(recorder.WriteFile(base_path).ok());
  ASSERT_TRUE(recorder.WriteFile(fresh_path).ok());
  auto report =
      CompareBenchFiles(base_path, fresh_path, BenchCompareOptions{});
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report.ValueOrDie().ok);
  EXPECT_FALSE(
      CompareBenchFiles(base_path, "/no/such/file.json", BenchCompareOptions{})
          .ok());
  std::remove(base_path.c_str());
  std::remove(fresh_path.c_str());
}

}  // namespace
}  // namespace fedadmm::obs
