// Metrics registry math: exact-rank percentile semantics at bucket edges,
// empty/single-sample degenerate cases, per-shard histogram merging, and
// registry handle stability.

#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <cmath>

#include "obs/json.h"

namespace fedadmm::obs {
namespace {

TEST(CounterTest, AddsAndResets) {
  Counter c;
  EXPECT_EQ(c.value(), 0);
  c.Add(3);
  c.Add(4);
  EXPECT_EQ(c.value(), 7);
  c.Reset();
  EXPECT_EQ(c.value(), 0);
}

TEST(GaugeTest, KeepsLastValue) {
  Gauge g;
  g.Set(10);
  g.Set(-2);
  EXPECT_EQ(g.value(), -2);
}

TEST(HistogramStatsTest, BucketBoundsAreLogSpaced) {
  // Bucket 0 tops out at 1 µs; every 8th bound is the next decade exactly.
  EXPECT_DOUBLE_EQ(HistogramStats::UpperBound(0), 1e-6);
  EXPECT_DOUBLE_EQ(HistogramStats::UpperBound(8), 1e-5);
  EXPECT_DOUBLE_EQ(HistogramStats::UpperBound(16), 1e-4);
  EXPECT_TRUE(std::isinf(
      HistogramStats::UpperBound(HistogramStats::kNumBuckets - 1)));
  // A sample exactly at a bound lands in the bucket it tops.
  EXPECT_EQ(HistogramStats::BucketIndex(1e-5), 8);
  EXPECT_EQ(HistogramStats::BucketIndex(1e-5 * 0.999), 8);
  EXPECT_EQ(HistogramStats::BucketIndex(1e-5 * 1.001), 9);
  // Overflow bucket catches everything past 100 s.
  EXPECT_EQ(HistogramStats::BucketIndex(1e6),
            HistogramStats::kNumBuckets - 1);
}

TEST(HistogramTest, EmptyHistogramHasNanSummaries) {
  Histogram h;
  const HistogramStats stats = h.Stats();
  EXPECT_EQ(stats.count, 0);
  EXPECT_TRUE(std::isnan(stats.Percentile(50)));
  EXPECT_TRUE(std::isnan(stats.Mean()));
}

TEST(HistogramTest, SingleSampleIsExactAtEveryQuantile) {
  Histogram h;
  h.Record(0.00042);
  const HistogramStats stats = h.Stats();
  EXPECT_EQ(stats.count, 1);
  // Bucket resolution never widens a single sample: clamping to the exact
  // [min, max] pins every quantile to the sample itself.
  for (double q : {0.0, 1.0, 50.0, 99.0, 100.0}) {
    EXPECT_DOUBLE_EQ(stats.Percentile(q), 0.00042) << "q=" << q;
  }
  EXPECT_DOUBLE_EQ(stats.Mean(), 0.00042);
}

TEST(HistogramTest, ExactRanksAtBucketEdges) {
  // Samples placed exactly ON bucket upper bounds: the rank sample's
  // bucket bound IS the sample, so percentiles are exact, not just
  // bucket-resolution.
  Histogram h;
  h.Record(1e-5);  // bucket 8's bound
  h.Record(1e-4);  // bucket 16's bound
  h.Record(1e-3);  // bucket 24's bound
  h.Record(1e-2);  // bucket 32's bound
  const HistogramStats stats = h.Stats();
  ASSERT_EQ(stats.count, 4);
  // rank = ceil(q/100 · 4), 1-based over the sorted samples.
  EXPECT_DOUBLE_EQ(stats.Percentile(25), 1e-5);   // rank 1
  EXPECT_DOUBLE_EQ(stats.Percentile(50), 1e-4);   // rank 2
  EXPECT_DOUBLE_EQ(stats.Percentile(75), 1e-3);   // rank 3
  EXPECT_DOUBLE_EQ(stats.Percentile(100), 1e-2);  // rank 4 == exact max
  // Tiny q clamps to rank 1; the min clamp keeps it at the exact minimum.
  EXPECT_DOUBLE_EQ(stats.Percentile(0.001), 1e-5);
}

TEST(HistogramTest, PercentileIsBracketedAndClamped) {
  Histogram h;
  for (double s : {0.0011, 0.0023, 0.0041, 0.0083}) h.Record(s);
  const HistogramStats stats = h.Stats();
  const double p50 = stats.Percentile(50);
  // Rank 2 is 0.0023: the reported value can sit anywhere in that sample's
  // bucket but never below the sample's bucket lower bound or outside the
  // exact extrema.
  EXPECT_GE(p50, 0.0023);
  EXPECT_LE(p50, HistogramStats::UpperBound(
                     HistogramStats::BucketIndex(0.0023)));
  EXPECT_DOUBLE_EQ(stats.Percentile(100), 0.0083);
  EXPECT_DOUBLE_EQ(stats.min, 0.0011);
  EXPECT_DOUBLE_EQ(stats.max, 0.0083);
}

TEST(HistogramTest, NegativeSamplesClampToZero) {
  Histogram h;
  h.Record(-1.0);
  const HistogramStats stats = h.Stats();
  EXPECT_EQ(stats.count, 1);
  EXPECT_DOUBLE_EQ(stats.min, 0.0);
  EXPECT_DOUBLE_EQ(stats.Percentile(50), 0.0);
}

TEST(HistogramTest, MergePreservesRankSemantics) {
  // Per-shard histograms merged into fleet-wide stats must behave exactly
  // like one histogram that saw all samples.
  Histogram shard0;
  Histogram shard1;
  shard0.Record(1e-5);
  shard0.Record(1e-2);
  shard1.Record(1e-4);
  shard1.Record(1e-3);

  HistogramStats merged = shard0.Stats();
  merged.MergeFrom(shard1.Stats());

  Histogram all;
  for (double s : {1e-5, 1e-2, 1e-4, 1e-3}) all.Record(s);
  const HistogramStats expected = all.Stats();

  EXPECT_EQ(merged.count, expected.count);
  EXPECT_DOUBLE_EQ(merged.sum, expected.sum);
  EXPECT_DOUBLE_EQ(merged.min, expected.min);
  EXPECT_DOUBLE_EQ(merged.max, expected.max);
  EXPECT_EQ(merged.buckets, expected.buckets);
  for (double q : {10.0, 50.0, 90.0, 100.0}) {
    EXPECT_DOUBLE_EQ(merged.Percentile(q), expected.Percentile(q)) << q;
  }
}

TEST(HistogramTest, MergeWithEmptyIsIdentity) {
  Histogram h;
  h.Record(0.5);
  HistogramStats stats = h.Stats();
  stats.MergeFrom(HistogramStats{});
  EXPECT_EQ(stats.count, 1);
  EXPECT_DOUBLE_EQ(stats.min, 0.5);
  EXPECT_DOUBLE_EQ(stats.max, 0.5);

  HistogramStats empty;
  empty.MergeFrom(h.Stats());
  EXPECT_EQ(empty.count, 1);
  EXPECT_DOUBLE_EQ(empty.Percentile(50), 0.5);
}

TEST(MetricsRegistryTest, HandlesAreStableAcrossReset) {
  MetricsRegistry registry;
  Counter* c = registry.counter("a/count");
  Gauge* g = registry.gauge("a/gauge");
  Histogram* h = registry.histogram("a/hist");
  c->Add(5);
  g->Set(9);
  h->Record(0.1);
  registry.ResetValues();
  // Same pointers, zeroed contents.
  EXPECT_EQ(registry.counter("a/count"), c);
  EXPECT_EQ(registry.gauge("a/gauge"), g);
  EXPECT_EQ(registry.histogram("a/hist"), h);
  EXPECT_EQ(c->value(), 0);
  EXPECT_EQ(g->value(), 0);
  EXPECT_EQ(h->Stats().count, 0);
}

TEST(MetricsRegistryTest, SnapshotIsSortedByName) {
  MetricsRegistry registry;
  registry.counter("z")->Add(1);
  registry.counter("a")->Add(2);
  registry.counter("m")->Add(3);
  const MetricsSnapshot snapshot = registry.Snapshot();
  ASSERT_EQ(snapshot.counters.size(), 3u);
  EXPECT_EQ(snapshot.counters[0].first, "a");
  EXPECT_EQ(snapshot.counters[1].first, "m");
  EXPECT_EQ(snapshot.counters[2].first, "z");
}

TEST(MetricsRegistryTest, AggregateHistogramsMergesShardInstances) {
  MetricsRegistry registry;
  registry.histogram(ShardLabel("client/event_seconds", 0))->Record(1e-5);
  registry.histogram(ShardLabel("client/event_seconds", 1))->Record(1e-3);
  registry.histogram("other/seconds")->Record(1e2);
  const MetricsSnapshot snapshot = registry.Snapshot();
  const HistogramStats fleet =
      snapshot.AggregateHistograms("client/event_seconds");
  EXPECT_EQ(fleet.count, 2);
  EXPECT_DOUBLE_EQ(fleet.min, 1e-5);
  EXPECT_DOUBLE_EQ(fleet.max, 1e-3);
}

TEST(MetricsRegistryTest, ShardLabelSpelling) {
  EXPECT_EQ(ShardLabel("client/event_seconds", 3),
            "client/event_seconds{shard=3}");
}

TEST(MetricsRegistryTest, DisabledByDefault) {
  MetricsRegistry registry;
  EXPECT_FALSE(registry.enabled());
  registry.set_enabled(true);
  EXPECT_TRUE(registry.enabled());
}

TEST(MetricsRegistryTest, SnapshotJsonParsesBack) {
  MetricsRegistry registry;
  registry.counter("c/bytes")->Add(128);
  registry.gauge("g/resident")->Set(7);
  registry.histogram("h/seconds")->Record(0.25);
  registry.histogram("h/empty_seconds");
  const std::string json = SnapshotToJson(registry.Snapshot());
  auto doc = ParseJson(json);
  ASSERT_TRUE(doc.ok()) << doc.status().message();
  const JsonValue& value = doc.ValueOrDie();
  EXPECT_EQ(value.Find("counters")->Find("c/bytes")->number, 128.0);
  EXPECT_EQ(value.Find("gauges")->Find("g/resident")->number, 7.0);
  const JsonValue* hist = value.Find("histograms")->Find("h/seconds");
  ASSERT_NE(hist, nullptr);
  EXPECT_EQ(hist->Find("count")->number, 1.0);
  EXPECT_EQ(hist->Find("p50_seconds")->number, 0.25);
  // Empty histogram percentiles serialize as null (JSON has no NaN).
  EXPECT_TRUE(value.Find("histograms")
                  ->Find("h/empty_seconds")
                  ->Find("p50_seconds")
                  ->is_null());
}

}  // namespace
}  // namespace fedadmm::obs
