// The zero-perturbation contract: the obs rail only *reads* clocks and
// bumps counters, so enabling metrics, the trace recorder, and the
// round-trace writer must leave the training trajectory bitwise identical
// to a run with everything off. Mirrors the idiom of
// tests/fl/deterministic_replay_test.cc.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/fedadmm.h"
#include "fl/quadratic_problem.h"
#include "fl/selection.h"
#include "fl/simulation.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace fedadmm {
namespace {

QuadraticSpec Spec() {
  QuadraticSpec spec;
  spec.num_clients = 12;
  spec.dim = 7;
  spec.heterogeneity = 1.2;
  spec.seed = 91;
  return spec;
}

FedAdmmOptions Options() {
  FedAdmmOptions options;
  options.local.learning_rate = 0.05f;
  options.local.batch_size = 4;
  options.local.max_epochs = 3;
  options.local.variable_epochs = true;
  options.rho = StepSchedule(0.1);
  return options;
}

// One training run; `config` carries the obs knobs under test.
std::vector<float> RunTheta(uint64_t seed, int threads, int rounds,
                            SimulationConfig config = {}) {
  QuadraticProblem problem(Spec());
  FedAdmm algo(Options());
  UniformFractionSelector selector(12, 0.5);
  config.max_rounds = rounds;
  config.seed = seed;
  config.num_threads = threads;
  Simulation sim(&problem, &algo, &selector, config);
  EXPECT_TRUE(sim.Run().ok());
  return sim.theta();
}

std::string ReadAll(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

// RAII guard: flips the global metrics flag on and restores off, so a
// failing assertion cannot leak an enabled registry into other tests.
class MetricsOn {
 public:
  MetricsOn() { obs::MetricsRegistry::Global().set_enabled(true); }
  ~MetricsOn() { obs::MetricsRegistry::Global().set_enabled(false); }
};

TEST(ObsEquivalenceTest, MetricsEnabledIsBitwiseInvisible) {
  ASSERT_FALSE(obs::MetricsRegistry::Global().enabled());
  const std::vector<float> baseline = RunTheta(7, 3, 8);
  std::vector<float> observed;
  {
    MetricsOn on;
    obs::MetricsRegistry::Global().ResetValues();
    observed = RunTheta(7, 3, 8);
  }
  EXPECT_EQ(baseline, observed);
  // The run actually hit the instrumented paths: phase histograms filled.
  const obs::MetricsSnapshot snapshot =
      obs::MetricsRegistry::Global().Snapshot();
  const obs::HistogramStats aggregate =
      snapshot.AggregateHistograms("server/phase/aggregate_seconds");
  EXPECT_EQ(aggregate.count, 8);
  const obs::HistogramStats events =
      snapshot.AggregateHistograms("client/event_seconds");
  EXPECT_GT(events.count, 0);
}

TEST(ObsEquivalenceTest, TraceRecorderIsBitwiseInvisible) {
  const std::vector<float> baseline = RunTheta(7, 3, 8);
  obs::TraceRecorder& recorder = obs::TraceRecorder::Global();
  recorder.Start();
  const std::vector<float> traced = RunTheta(7, 3, 8);
  recorder.Stop();
  EXPECT_EQ(baseline, traced);
  EXPECT_GT(recorder.size(), 0u);

  // The capture loads as a chrome://tracing document.
  const std::string path = testing::TempDir() + "/obs_equiv_chrome.json";
  ASSERT_TRUE(recorder.WriteChromeTrace(path).ok());
  auto doc = obs::ParseJson(ReadAll(path));
  ASSERT_TRUE(doc.ok()) << doc.status().message();
  const obs::JsonValue* events = doc.ValueOrDie().Find("traceEvents");
  ASSERT_NE(events, nullptr);
  EXPECT_EQ(events->elements.size(), recorder.size());
  bool saw_finalize = false;
  for (const obs::JsonValue& event : events->elements) {
    if (event.Find("name")->string == "finalize") saw_finalize = true;
  }
  EXPECT_TRUE(saw_finalize) << "server round phases missing from the trace";
  std::remove(path.c_str());
  recorder.Start();
  recorder.Stop();  // leave the global recorder empty for other tests
}

TEST(ObsEquivalenceTest, RoundTraceIsBitwiseInvisibleAndParses) {
  const std::vector<float> baseline = RunTheta(7, 3, 8);

  const std::string path = testing::TempDir() + "/obs_equiv_rounds.jsonl";
  SimulationConfig config;
  config.round_trace_path = path;
  const std::vector<float> traced = RunTheta(7, 3, 8, config);
  EXPECT_EQ(baseline, traced);

  std::ifstream in(path);
  std::string line;
  int rounds = 0;
  while (std::getline(in, line)) {
    auto doc = obs::ParseJson(line);
    ASSERT_TRUE(doc.ok()) << line;
    const obs::JsonValue& record = doc.ValueOrDie();
    EXPECT_EQ(record.Find("round")->number, rounds);
    ASSERT_NE(record.Find("num_selected"), nullptr);
    ASSERT_NE(record.Find("upload_bytes"), nullptr);
    ASSERT_NE(record.Find("wall_seconds"), nullptr);
    ++rounds;
  }
  EXPECT_EQ(rounds, 8);
  std::remove(path.c_str());
}

TEST(ObsEquivalenceTest, DeterministicOnlyTraceIsByteIdenticalAcrossRuns) {
  const std::string path_a = testing::TempDir() + "/obs_equiv_det_a.jsonl";
  const std::string path_b = testing::TempDir() + "/obs_equiv_det_b.jsonl";
  SimulationConfig config;
  config.round_trace_deterministic_only = true;

  config.round_trace_path = path_a;
  const std::vector<float> run_a = RunTheta(7, 3, 8, config);
  config.round_trace_path = path_b;
  const std::vector<float> run_b = RunTheta(7, 3, 8, config);
  EXPECT_EQ(run_a, run_b);

  const std::string trace_a = ReadAll(path_a);
  ASSERT_FALSE(trace_a.empty());
  EXPECT_EQ(trace_a, ReadAll(path_b))
      << "deterministic_only traces must be byte-identical for one seed";

  // Wall fields are zeroed, deterministic fields are not.
  std::istringstream lines(trace_a);
  std::string line;
  while (std::getline(lines, line)) {
    auto doc = obs::ParseJson(line);
    ASSERT_TRUE(doc.ok());
    EXPECT_EQ(doc.ValueOrDie().Find("wall_seconds")->number, 0.0);
  }
  std::remove(path_a.c_str());
  std::remove(path_b.c_str());
}

TEST(ObsEquivalenceTest, ShardedRunFillsPerShardHistograms) {
  SimulationConfig config;
  config.num_shards = 4;
  const std::vector<float> baseline = RunTheta(7, 3, 6, config);
  std::vector<float> observed;
  {
    MetricsOn on;
    obs::MetricsRegistry::Global().ResetValues();
    observed = RunTheta(7, 3, 6, config);
  }
  EXPECT_EQ(baseline, observed);
  const obs::MetricsSnapshot snapshot =
      obs::MetricsRegistry::Global().Snapshot();
  // Client events carry {shard=s} labels; 12 clients over 4 shards with
  // half selected per round still touches more than one shard in 6 rounds.
  const obs::HistogramStats fleet =
      snapshot.AggregateHistograms("client/event_seconds");
  EXPECT_GT(fleet.count, 0);
  int shards_seen = 0;
  for (const auto& [name, stats] : snapshot.histograms) {
    if (name.rfind("client/event_seconds{", 0) == 0 && stats.count > 0) {
      ++shards_seen;
    }
  }
  EXPECT_GT(shards_seen, 1);
}

}  // namespace
}  // namespace fedadmm
