#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

namespace fedadmm {
namespace {

TEST(ThreadPoolTest, RunsSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, ClampsThreadCountToAtLeastOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1);
  ThreadPool pool2(-3);
  EXPECT_EQ(pool2.num_threads(), 1);
}

TEST(ThreadPoolTest, ParallelForCoversAllIndicesExactlyOnce) {
  ThreadPool pool(4);
  const int n = 1000;
  std::vector<std::atomic<int>> hits(n);
  pool.ParallelFor(n, [&hits](int i, int worker) {
    (void)worker;
    hits[static_cast<size_t>(i)].fetch_add(1);
  });
  for (int i = 0; i < n; ++i) EXPECT_EQ(hits[static_cast<size_t>(i)].load(), 1);
}

TEST(ThreadPoolTest, ParallelForWorkerSlotsAreInRange) {
  ThreadPool pool(3);
  std::atomic<bool> ok{true};
  pool.ParallelFor(200, [&ok](int i, int worker) {
    (void)i;
    if (worker < 0 || worker >= 3) ok.store(false);
  });
  EXPECT_TRUE(ok.load());
}

TEST(ThreadPoolTest, ParallelForZeroAndNegativeAreNoOps) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  pool.ParallelFor(0, [&](int, int) { counter.fetch_add(1); });
  pool.ParallelFor(-5, [&](int, int) { counter.fetch_add(1); });
  EXPECT_EQ(counter.load(), 0);
}

TEST(ThreadPoolTest, ParallelForWithSingleThreadIsSequentialOrder) {
  ThreadPool pool(1);
  std::vector<int> order;
  pool.ParallelFor(10, [&order](int i, int) { order.push_back(i); });
  std::vector<int> expected(10);
  std::iota(expected.begin(), expected.end(), 0);
  EXPECT_EQ(order, expected);
}

TEST(ThreadPoolTest, SequentialParallelForsReusePool) {
  ThreadPool pool(4);
  std::atomic<long> total{0};
  for (int pass = 0; pass < 10; ++pass) {
    pool.ParallelFor(100, [&total](int i, int) { total.fetch_add(i); });
  }
  EXPECT_EQ(total.load(), 10L * (99 * 100 / 2));
}

TEST(ThreadPoolTest, UnevenWorkloadsComplete) {
  ThreadPool pool(4);
  std::atomic<int> done{0};
  pool.ParallelFor(32, [&done](int i, int) {
    // Simulated variable work (the heterogeneity pattern in the simulator).
    volatile double x = 0;
    for (int k = 0; k < (i % 7) * 10000; ++k) x += k;
    done.fetch_add(1);
  });
  EXPECT_EQ(done.load(), 32);
}

}  // namespace
}  // namespace fedadmm
