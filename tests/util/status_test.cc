#include "util/status.h"

#include <gtest/gtest.h>

namespace fedadmm {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
  EXPECT_TRUE(s.message().empty());
}

TEST(StatusTest, FactoryHelpersSetCodeAndMessage) {
  EXPECT_TRUE(Status::InvalidArgument("x").IsInvalidArgument());
  EXPECT_TRUE(Status::NotFound("x").IsNotFound());
  EXPECT_TRUE(Status::IoError("x").IsIoError());
  EXPECT_TRUE(Status::OutOfRange("x").IsOutOfRange());
  EXPECT_TRUE(Status::FailedPrecondition("x").IsFailedPrecondition());
  EXPECT_TRUE(Status::Unimplemented("x").IsUnimplemented());
  EXPECT_TRUE(Status::Internal("x").IsInternal());
  EXPECT_EQ(Status::NotFound("missing file").message(), "missing file");
}

TEST(StatusTest, ToStringIncludesCodeName) {
  const Status s = Status::InvalidArgument("bad dims");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad dims");
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::OK(), Status());
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::IoError("a"));
}

TEST(StatusTest, CodeNamesAreStable) {
  EXPECT_STREQ(StatusCodeToString(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kInvalidArgument),
               "InvalidArgument");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kInternal), "Internal");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.ValueOrDie(), 42);
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("nope"));
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
  EXPECT_EQ(r.ValueOr(-1), -1);
}

TEST(ResultTest, ValueOrReturnsValueWhenOk) {
  Result<int> r(7);
  EXPECT_EQ(r.ValueOr(-1), 7);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::vector<int>> r(std::vector<int>{1, 2, 3});
  std::vector<int> v = std::move(r).ValueOrDie();
  EXPECT_EQ(v.size(), 3u);
}

TEST(ResultTest, WorksWithAssignOrReturnMacro) {
  auto producer = [](bool fail) -> Result<int> {
    if (fail) return Status::Internal("boom");
    return 5;
  };
  auto consumer = [&](bool fail) -> Status {
    FEDADMM_ASSIGN_OR_RETURN(int v, producer(fail));
    EXPECT_EQ(v, 5);
    return Status::OK();
  };
  EXPECT_TRUE(consumer(false).ok());
  EXPECT_TRUE(consumer(true).IsInternal());
}

TEST(ResultTest, ReturnIfErrorPropagates) {
  auto fn = [](const Status& s) -> Status {
    FEDADMM_RETURN_IF_ERROR(s);
    return Status::Internal("not reached on error");
  };
  EXPECT_TRUE(fn(Status::IoError("disk")).IsIoError());
  EXPECT_TRUE(fn(Status::OK()).IsInternal());
}

}  // namespace
}  // namespace fedadmm
