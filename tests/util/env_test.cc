#include "util/env.h"

#include <gtest/gtest.h>

#include <cstdlib>

namespace fedadmm {
namespace {

class EnvTest : public ::testing::Test {
 protected:
  void SetEnv(const char* name, const char* value) {
    ::setenv(name, value, /*overwrite=*/1);
  }
  void TearDown() override {
    ::unsetenv("FEDADMM_TEST_VAR");
  }
};

TEST_F(EnvTest, StringFallbackWhenUnset) {
  ::unsetenv("FEDADMM_TEST_VAR");
  EXPECT_EQ(GetEnvString("FEDADMM_TEST_VAR", "dflt"), "dflt");
}

TEST_F(EnvTest, StringReadsValue) {
  SetEnv("FEDADMM_TEST_VAR", "hello");
  EXPECT_EQ(GetEnvString("FEDADMM_TEST_VAR", "dflt"), "hello");
}

TEST_F(EnvTest, EmptyStringUsesFallback) {
  SetEnv("FEDADMM_TEST_VAR", "");
  EXPECT_EQ(GetEnvString("FEDADMM_TEST_VAR", "dflt"), "dflt");
}

TEST_F(EnvTest, IntParsesAndFallsBack) {
  SetEnv("FEDADMM_TEST_VAR", "123");
  EXPECT_EQ(GetEnvInt("FEDADMM_TEST_VAR", 7), 123);
  SetEnv("FEDADMM_TEST_VAR", "-45");
  EXPECT_EQ(GetEnvInt("FEDADMM_TEST_VAR", 7), -45);
  SetEnv("FEDADMM_TEST_VAR", "notanint");
  EXPECT_EQ(GetEnvInt("FEDADMM_TEST_VAR", 7), 7);
  SetEnv("FEDADMM_TEST_VAR", "12abc");
  EXPECT_EQ(GetEnvInt("FEDADMM_TEST_VAR", 7), 7);
  ::unsetenv("FEDADMM_TEST_VAR");
  EXPECT_EQ(GetEnvInt("FEDADMM_TEST_VAR", 7), 7);
}

TEST_F(EnvTest, DoubleParsesAndFallsBack) {
  SetEnv("FEDADMM_TEST_VAR", "0.5");
  EXPECT_DOUBLE_EQ(GetEnvDouble("FEDADMM_TEST_VAR", 1.0), 0.5);
  SetEnv("FEDADMM_TEST_VAR", "1e-3");
  EXPECT_DOUBLE_EQ(GetEnvDouble("FEDADMM_TEST_VAR", 1.0), 1e-3);
  SetEnv("FEDADMM_TEST_VAR", "oops");
  EXPECT_DOUBLE_EQ(GetEnvDouble("FEDADMM_TEST_VAR", 1.0), 1.0);
}

TEST_F(EnvTest, BoolRecognizesTruthyStrings) {
  for (const char* v : {"1", "true", "TRUE", "on", "yes", "Yes"}) {
    SetEnv("FEDADMM_TEST_VAR", v);
    EXPECT_TRUE(GetEnvBool("FEDADMM_TEST_VAR", false)) << v;
  }
  for (const char* v : {"0", "false", "off", "no", "banana"}) {
    SetEnv("FEDADMM_TEST_VAR", v);
    EXPECT_FALSE(GetEnvBool("FEDADMM_TEST_VAR", true)) << v;
  }
  ::unsetenv("FEDADMM_TEST_VAR");
  EXPECT_TRUE(GetEnvBool("FEDADMM_TEST_VAR", true));
  EXPECT_FALSE(GetEnvBool("FEDADMM_TEST_VAR", false));
}

}  // namespace
}  // namespace fedadmm
