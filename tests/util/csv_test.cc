#include "util/csv.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

namespace fedadmm {
namespace {

std::string ReadFile(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

class CsvTest : public ::testing::Test {
 protected:
  void TearDown() override { std::remove(path_.c_str()); }
  std::string path_ = ::testing::TempDir() + "/fedadmm_csv_test.csv";
};

TEST_F(CsvTest, WritesSimpleRows) {
  CsvWriter w;
  ASSERT_TRUE(w.Open(path_).ok());
  ASSERT_TRUE(w.WriteRow({"a", "b", "c"}).ok());
  ASSERT_TRUE(w.WriteRow({"1", "2", "3"}).ok());
  ASSERT_TRUE(w.Close().ok());
  EXPECT_EQ(ReadFile(path_), "a,b,c\n1,2,3\n");
}

TEST_F(CsvTest, QuotesSpecialCharacters) {
  CsvWriter w;
  ASSERT_TRUE(w.Open(path_).ok());
  ASSERT_TRUE(w.WriteRow({"has,comma", "has\"quote", "plain"}).ok());
  ASSERT_TRUE(w.Close().ok());
  EXPECT_EQ(ReadFile(path_), "\"has,comma\",\"has\"\"quote\",plain\n");
}

TEST_F(CsvTest, NumericRowFormatting) {
  CsvWriter w;
  ASSERT_TRUE(w.Open(path_).ok());
  ASSERT_TRUE(w.WriteNumericRow({1.0, 0.5, 100000.0}).ok());
  ASSERT_TRUE(w.Close().ok());
  EXPECT_EQ(ReadFile(path_), "1,0.5,100000\n");
}

TEST_F(CsvTest, WriteWithoutOpenFails) {
  CsvWriter w;
  EXPECT_TRUE(w.WriteRow({"x"}).IsFailedPrecondition());
}

TEST_F(CsvTest, OpenBadPathFails) {
  CsvWriter w;
  EXPECT_TRUE(w.Open("/nonexistent_dir_zzz/file.csv").IsIoError());
}

TEST_F(CsvTest, CloseWithoutOpenIsOk) {
  CsvWriter w;
  EXPECT_TRUE(w.Close().ok());
}

TEST_F(CsvTest, EscapeFieldStandalone) {
  EXPECT_EQ(CsvWriter::EscapeField("plain"), "plain");
  EXPECT_EQ(CsvWriter::EscapeField("a,b"), "\"a,b\"");
  EXPECT_EQ(CsvWriter::EscapeField("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(CsvWriter::EscapeField("line\nbreak"), "\"line\nbreak\"");
}

TEST_F(CsvTest, ParseCsvBasicRows) {
  const auto rows = ParseCsv("a,b,c\n1,2,3\n").ValueOrDie();
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0], (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(rows[1], (std::vector<std::string>{"1", "2", "3"}));
}

TEST_F(CsvTest, ParseCsvHandlesQuotesCrlfAndEmptyFields) {
  const auto rows =
      ParseCsv("\"a,b\",\"say \"\"hi\"\"\",\r\nx,\"multi\nline\",z")
          .ValueOrDie();
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0], (std::vector<std::string>{"a,b", "say \"hi\"", ""}));
  EXPECT_EQ(rows[1], (std::vector<std::string>{"x", "multi\nline", "z"}));
}

TEST_F(CsvTest, ParseCsvNoTrailingNewlineAndUnterminatedQuote) {
  EXPECT_EQ(ParseCsv("only,row").ValueOrDie().size(), 1u);
  EXPECT_EQ(ParseCsv("").ValueOrDie().size(), 0u);
  EXPECT_TRUE(ParseCsv("\"oops").status().IsInvalidArgument());
}

TEST_F(CsvTest, WriterReaderRoundTrip) {
  CsvWriter w;
  ASSERT_TRUE(w.Open(path_).ok());
  ASSERT_TRUE(w.WriteRow({"plain", "a,b", "say \"hi\"", "line\nbreak"}).ok());
  ASSERT_TRUE(w.Close().ok());
  const auto rows = ReadCsvFile(path_).ValueOrDie();
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0], (std::vector<std::string>{"plain", "a,b", "say \"hi\"",
                                               "line\nbreak"}));
}

TEST_F(CsvTest, ReadCsvFileMissingFileFails) {
  EXPECT_TRUE(ReadCsvFile("/nonexistent_dir_zzz/f.csv").status().IsIoError());
}

TEST_F(CsvTest, ReopenTruncates) {
  CsvWriter w;
  ASSERT_TRUE(w.Open(path_).ok());
  ASSERT_TRUE(w.WriteRow({"old"}).ok());
  ASSERT_TRUE(w.Close().ok());
  ASSERT_TRUE(w.Open(path_).ok());
  ASSERT_TRUE(w.WriteRow({"new"}).ok());
  ASSERT_TRUE(w.Close().ok());
  EXPECT_EQ(ReadFile(path_), "new\n");
}

}  // namespace
}  // namespace fedadmm
