#include "util/csv.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

namespace fedadmm {
namespace {

std::string ReadFile(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

class CsvTest : public ::testing::Test {
 protected:
  void TearDown() override { std::remove(path_.c_str()); }
  std::string path_ = ::testing::TempDir() + "/fedadmm_csv_test.csv";
};

TEST_F(CsvTest, WritesSimpleRows) {
  CsvWriter w;
  ASSERT_TRUE(w.Open(path_).ok());
  ASSERT_TRUE(w.WriteRow({"a", "b", "c"}).ok());
  ASSERT_TRUE(w.WriteRow({"1", "2", "3"}).ok());
  ASSERT_TRUE(w.Close().ok());
  EXPECT_EQ(ReadFile(path_), "a,b,c\n1,2,3\n");
}

TEST_F(CsvTest, QuotesSpecialCharacters) {
  CsvWriter w;
  ASSERT_TRUE(w.Open(path_).ok());
  ASSERT_TRUE(w.WriteRow({"has,comma", "has\"quote", "plain"}).ok());
  ASSERT_TRUE(w.Close().ok());
  EXPECT_EQ(ReadFile(path_), "\"has,comma\",\"has\"\"quote\",plain\n");
}

TEST_F(CsvTest, NumericRowFormatting) {
  CsvWriter w;
  ASSERT_TRUE(w.Open(path_).ok());
  ASSERT_TRUE(w.WriteNumericRow({1.0, 0.5, 100000.0}).ok());
  ASSERT_TRUE(w.Close().ok());
  EXPECT_EQ(ReadFile(path_), "1,0.5,100000\n");
}

TEST_F(CsvTest, NumericRowKeepsLargeIntegersExact) {
  // Byte counters at fleet scale blow past both float32's 2^24 integer
  // range and the old "%.6g" formatting (12345678 used to come back as
  // 1.23457e+07). Integers must print digit-exact up to 2^53.
  CsvWriter w;
  ASSERT_TRUE(w.Open(path_).ok());
  ASSERT_TRUE(w.WriteNumericRow({12345678.0, 16777217.0,  // 2^24 + 1
                                 123456789012345.0, -987654321.0,
                                 9007199254740992.0})  // 2^53
                  .ok());
  ASSERT_TRUE(w.Close().ok());
  EXPECT_EQ(ReadFile(path_),
            "12345678,16777217,123456789012345,-987654321,"
            "9007199254740992\n");
}

TEST_F(CsvTest, NumericRowRoundTripsThroughParse) {
  // Write → parse → strtod must reproduce every value bitwise: exact
  // integers beyond 2^24 and full-precision doubles alike.
  const std::vector<double> values = {12345678.0,
                                      1e15 + 1.0,
                                      0.1,
                                      1.0 / 3.0,
                                      -2.718281828459045,
                                      6.02214076e23};
  CsvWriter w;
  ASSERT_TRUE(w.Open(path_).ok());
  ASSERT_TRUE(w.WriteNumericRow(values).ok());
  ASSERT_TRUE(w.Close().ok());
  const auto rows = ReadCsvFile(path_).ValueOrDie();
  ASSERT_EQ(rows.size(), 1u);
  ASSERT_EQ(rows[0].size(), values.size());
  for (size_t i = 0; i < values.size(); ++i) {
    EXPECT_EQ(std::strtod(rows[0][i].c_str(), nullptr), values[i])
        << "column " << i << " = '" << rows[0][i] << "'";
  }
}

TEST_F(CsvTest, ParseCsvCrlfRowsLeaveNoCarriageReturnResidue) {
  // Externally written fleet traces use \r\n; no field — least of all the
  // last one per row — may keep a trailing '\r'.
  const auto rows =
      ParseCsv("client_id,steps_per_second\r\n0,100.5\r\n1,80\r\n")
          .ValueOrDie();
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_EQ(rows[0],
            (std::vector<std::string>{"client_id", "steps_per_second"}));
  EXPECT_EQ(rows[1], (std::vector<std::string>{"0", "100.5"}));
  EXPECT_EQ(rows[2], (std::vector<std::string>{"1", "80"}));
  for (const auto& row : rows) {
    for (const auto& field : row) {
      EXPECT_EQ(field.find('\r'), std::string::npos);
    }
  }
}

TEST_F(CsvTest, ParseCsvBareCarriageReturnTerminatesRow) {
  // Old-Mac endings (and CR-truncated transfers): a bare unquoted '\r' is
  // a row break, not silently deleted mid-field ("a\rb" used to glue into
  // "ab").
  const auto rows = ParseCsv("a,b\rc,d\re").ValueOrDie();
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_EQ(rows[0], (std::vector<std::string>{"a", "b"}));
  EXPECT_EQ(rows[1], (std::vector<std::string>{"c", "d"}));
  EXPECT_EQ(rows[2], (std::vector<std::string>{"e"}));
  // A quoted CR is still field content.
  const auto quoted = ParseCsv("\"a\rb\",c\n").ValueOrDie();
  ASSERT_EQ(quoted.size(), 1u);
  EXPECT_EQ(quoted[0], (std::vector<std::string>{"a\rb", "c"}));
}

TEST_F(CsvTest, WriteWithoutOpenFails) {
  CsvWriter w;
  EXPECT_TRUE(w.WriteRow({"x"}).IsFailedPrecondition());
}

TEST_F(CsvTest, OpenBadPathFails) {
  CsvWriter w;
  EXPECT_TRUE(w.Open("/nonexistent_dir_zzz/file.csv").IsIoError());
}

TEST_F(CsvTest, CloseWithoutOpenIsOk) {
  CsvWriter w;
  EXPECT_TRUE(w.Close().ok());
}

TEST_F(CsvTest, EscapeFieldStandalone) {
  EXPECT_EQ(CsvWriter::EscapeField("plain"), "plain");
  EXPECT_EQ(CsvWriter::EscapeField("a,b"), "\"a,b\"");
  EXPECT_EQ(CsvWriter::EscapeField("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(CsvWriter::EscapeField("line\nbreak"), "\"line\nbreak\"");
}

TEST_F(CsvTest, ParseCsvBasicRows) {
  const auto rows = ParseCsv("a,b,c\n1,2,3\n").ValueOrDie();
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0], (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(rows[1], (std::vector<std::string>{"1", "2", "3"}));
}

TEST_F(CsvTest, ParseCsvHandlesQuotesCrlfAndEmptyFields) {
  const auto rows =
      ParseCsv("\"a,b\",\"say \"\"hi\"\"\",\r\nx,\"multi\nline\",z")
          .ValueOrDie();
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0], (std::vector<std::string>{"a,b", "say \"hi\"", ""}));
  EXPECT_EQ(rows[1], (std::vector<std::string>{"x", "multi\nline", "z"}));
}

TEST_F(CsvTest, ParseCsvNoTrailingNewlineAndUnterminatedQuote) {
  EXPECT_EQ(ParseCsv("only,row").ValueOrDie().size(), 1u);
  EXPECT_EQ(ParseCsv("").ValueOrDie().size(), 0u);
  EXPECT_TRUE(ParseCsv("\"oops").status().IsInvalidArgument());
}

TEST_F(CsvTest, WriterReaderRoundTrip) {
  CsvWriter w;
  ASSERT_TRUE(w.Open(path_).ok());
  ASSERT_TRUE(w.WriteRow({"plain", "a,b", "say \"hi\"", "line\nbreak"}).ok());
  ASSERT_TRUE(w.Close().ok());
  const auto rows = ReadCsvFile(path_).ValueOrDie();
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0], (std::vector<std::string>{"plain", "a,b", "say \"hi\"",
                                               "line\nbreak"}));
}

TEST_F(CsvTest, ReadCsvFileMissingFileFails) {
  EXPECT_TRUE(ReadCsvFile("/nonexistent_dir_zzz/f.csv").status().IsIoError());
}

TEST_F(CsvTest, ReopenTruncates) {
  CsvWriter w;
  ASSERT_TRUE(w.Open(path_).ok());
  ASSERT_TRUE(w.WriteRow({"old"}).ok());
  ASSERT_TRUE(w.Close().ok());
  ASSERT_TRUE(w.Open(path_).ok());
  ASSERT_TRUE(w.WriteRow({"new"}).ok());
  ASSERT_TRUE(w.Close().ok());
  EXPECT_EQ(ReadFile(path_), "new\n");
}

}  // namespace
}  // namespace fedadmm
