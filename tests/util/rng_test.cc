#include "util/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <set>

namespace fedadmm {
namespace {

TEST(RngTest, SameSeedSameSequence) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.UniformInt(0, 1000000), b.UniformInt(0, 1000000));
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.UniformInt(0, 1 << 30) == b.UniformInt(0, 1 << 30)) ++same;
  }
  EXPECT_LT(same, 5);
}

TEST(RngTest, ForkIsDeterministicAndDrawIndependent) {
  Rng parent(77);
  Rng child1 = parent.Fork(3, 4);
  // Draw from the parent; forks must not be affected.
  for (int i = 0; i < 50; ++i) parent.Uniform();
  Rng child2 = parent.Fork(3, 4);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(child1.UniformInt(0, 1 << 30), child2.UniformInt(0, 1 << 30));
  }
}

TEST(RngTest, ForkStreamsAreDistinct) {
  Rng parent(77);
  Rng a = parent.Fork(1);
  Rng b = parent.Fork(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.UniformInt(0, 1 << 30) == b.UniformInt(0, 1 << 30)) ++same;
  }
  EXPECT_LT(same, 5);
}

TEST(RngTest, UniformIntRespectsBounds) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    const int64_t v = rng.UniformInt(-3, 7);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 7);
  }
}

TEST(RngTest, UniformIntCoversRange) {
  Rng rng(5);
  std::set<int64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.UniformInt(0, 4));
  EXPECT_EQ(seen.size(), 5u);
}

TEST(RngTest, UniformRealInRange) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.Uniform(2.0, 3.0);
    EXPECT_GE(v, 2.0);
    EXPECT_LT(v, 3.0);
  }
}

TEST(RngTest, NormalHasRoughlyCorrectMoments) {
  Rng rng(11);
  const int n = 20000;
  double sum = 0.0, sum_sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double v = rng.Normal(1.0, 2.0);
    sum += v;
    sum_sq += v * v;
  }
  const double mean = sum / n;
  const double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 1.0, 0.1);
  EXPECT_NEAR(var, 4.0, 0.3);
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(13);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(13);
  int hits = 0;
  const int n = 10000;
  for (int i = 0; i < n; ++i) hits += rng.Bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.03);
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(17);
  std::vector<int> v(50);
  std::iota(v.begin(), v.end(), 0);
  std::vector<int> original = v;
  rng.Shuffle(&v);
  EXPECT_NE(v, original);  // astronomically unlikely to be identical
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, original);
}

TEST(RngTest, SampleWithoutReplacementBasics) {
  Rng rng(19);
  auto result = rng.SampleWithoutReplacement(10, 4);
  ASSERT_TRUE(result.ok());
  const auto& sample = result.ValueOrDie();
  EXPECT_EQ(sample.size(), 4u);
  std::set<int> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 4u);
  for (int v : sample) {
    EXPECT_GE(v, 0);
    EXPECT_LT(v, 10);
  }
}

TEST(RngTest, SampleWithoutReplacementFullPopulation) {
  Rng rng(19);
  auto result = rng.SampleWithoutReplacement(5, 5);
  ASSERT_TRUE(result.ok());
  std::set<int> unique(result.ValueOrDie().begin(),
                       result.ValueOrDie().end());
  EXPECT_EQ(unique.size(), 5u);
}

TEST(RngTest, SampleWithoutReplacementErrors) {
  Rng rng(19);
  EXPECT_TRUE(rng.SampleWithoutReplacement(3, 4).status().IsInvalidArgument());
  EXPECT_TRUE(
      rng.SampleWithoutReplacement(-1, 0).status().IsInvalidArgument());
  EXPECT_TRUE(
      rng.SampleWithoutReplacement(3, -1).status().IsInvalidArgument());
}

TEST(RngTest, SampleWithoutReplacementIsRoughlyUniform) {
  Rng rng(23);
  std::vector<int> counts(10, 0);
  const int trials = 5000;
  for (int t = 0; t < trials; ++t) {
    for (int v : rng.SampleWithoutReplacement(10, 3).ValueOrDie()) {
      ++counts[static_cast<size_t>(v)];
    }
  }
  // Each element expected trials * 3/10 = 1500 times.
  for (int c : counts) EXPECT_NEAR(c, 1500, 150);
}

TEST(RngTest, DirichletSumsToOne) {
  Rng rng(29);
  for (double alpha : {0.1, 1.0, 10.0}) {
    const auto p = rng.Dirichlet(8, alpha);
    ASSERT_EQ(p.size(), 8u);
    double sum = 0.0;
    for (double v : p) {
      EXPECT_GE(v, 0.0);
      sum += v;
    }
    EXPECT_NEAR(sum, 1.0, 1e-9);
  }
}

TEST(RngTest, DirichletSmallAlphaIsSkewed) {
  Rng rng(31);
  // With alpha = 0.05, mass concentrates: max component should usually
  // dominate.
  int dominated = 0;
  for (int t = 0; t < 50; ++t) {
    const auto p = rng.Dirichlet(10, 0.05);
    const double mx = *std::max_element(p.begin(), p.end());
    if (mx > 0.5) ++dominated;
  }
  EXPECT_GT(dominated, 25);
}

TEST(SplitMix64Test, IsDeterministicAndMixes) {
  EXPECT_EQ(SplitMix64(42), SplitMix64(42));
  EXPECT_NE(SplitMix64(42), SplitMix64(43));
  EXPECT_NE(SplitMix64(0), 0u);
}

}  // namespace
}  // namespace fedadmm
