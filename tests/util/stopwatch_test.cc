// StopwatchAccumulator: pause/resume bookkeeping. The clock-free
// AddSeconds path carries the exact-arithmetic assertions; the real-clock
// paths assert monotonicity only.

#include "util/stopwatch.h"

#include <gtest/gtest.h>

namespace fedadmm {
namespace {

TEST(StopwatchAccumulatorTest, StartsEmpty) {
  StopwatchAccumulator acc;
  EXPECT_EQ(acc.TotalSeconds(), 0.0);
  EXPECT_EQ(acc.segments(), 0);
  EXPECT_FALSE(acc.running());
}

TEST(StopwatchAccumulatorTest, AddSecondsAccumulatesExactly) {
  StopwatchAccumulator acc;
  acc.AddSeconds(0.25);
  acc.AddSeconds(0.5);
  acc.AddSeconds(0.125);
  EXPECT_DOUBLE_EQ(acc.TotalSeconds(), 0.875);
  EXPECT_EQ(acc.segments(), 3);
  EXPECT_FALSE(acc.running());
}

TEST(StopwatchAccumulatorTest, StartStopCompletesSegments) {
  StopwatchAccumulator acc;
  acc.Start();
  EXPECT_TRUE(acc.running());
  // A running segment is not part of the total yet.
  EXPECT_EQ(acc.segments(), 0);
  const double first = acc.Stop();
  EXPECT_GE(first, 0.0);
  EXPECT_FALSE(acc.running());
  EXPECT_EQ(acc.segments(), 1);
  EXPECT_DOUBLE_EQ(acc.TotalSeconds(), first);

  acc.Start();
  const double second = acc.Stop();
  EXPECT_EQ(acc.segments(), 2);
  EXPECT_DOUBLE_EQ(acc.TotalSeconds(), first + second);
}

TEST(StopwatchAccumulatorTest, StopWithoutStartIsNoOp) {
  StopwatchAccumulator acc;
  EXPECT_EQ(acc.Stop(), 0.0);
  EXPECT_EQ(acc.segments(), 0);
  EXPECT_EQ(acc.TotalSeconds(), 0.0);
}

TEST(StopwatchAccumulatorTest, DoubleStartKeepsOriginalSegment) {
  StopwatchAccumulator acc;
  acc.Start();
  acc.Start();  // no-op: must not restart the segment or create a second one
  EXPECT_TRUE(acc.running());
  acc.Stop();
  EXPECT_EQ(acc.segments(), 1);
  // The no-op Start left nothing pending.
  EXPECT_EQ(acc.Stop(), 0.0);
  EXPECT_EQ(acc.segments(), 1);
}

TEST(StopwatchAccumulatorTest, ResetClearsEverythingIncludingRunning) {
  StopwatchAccumulator acc;
  acc.AddSeconds(1.0);
  acc.Start();
  acc.Reset();
  EXPECT_EQ(acc.TotalSeconds(), 0.0);
  EXPECT_EQ(acc.segments(), 0);
  EXPECT_FALSE(acc.running());
  // A Stop after Reset must not conjure a segment from the dead Start.
  EXPECT_EQ(acc.Stop(), 0.0);
  EXPECT_EQ(acc.segments(), 0);
}

TEST(StopwatchAccumulatorTest, MixedClockAndExternalSegments) {
  StopwatchAccumulator acc;
  acc.AddSeconds(0.5);
  acc.Start();
  const double timed = acc.Stop();
  EXPECT_DOUBLE_EQ(acc.TotalSeconds(), 0.5 + timed);
  EXPECT_EQ(acc.segments(), 2);
}

}  // namespace
}  // namespace fedadmm
