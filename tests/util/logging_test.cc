#include "util/logging.h"

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <thread>
#include <vector>

namespace fedadmm {
namespace {

TEST(LoggingTest, SetAndGetLevel) {
  const LogLevel original = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
  SetLogLevel(LogLevel::kDebug);
  EXPECT_EQ(GetLogLevel(), LogLevel::kDebug);
  SetLogLevel(original);
}

TEST(LoggingTest, SuppressedMessagesDoNotCrash) {
  const LogLevel original = GetLogLevel();
  SetLogLevel(LogLevel::kOff);
  FEDADMM_LOG(Debug) << "hidden " << 42;
  FEDADMM_LOG(Info) << "hidden " << 3.14;
  FEDADMM_LOG(Warning) << "hidden";
  FEDADMM_LOG(Error) << "hidden";
  SetLogLevel(original);
}

TEST(LoggingTest, EmittedMessagesDoNotCrash) {
  const LogLevel original = GetLogLevel();
  SetLogLevel(LogLevel::kDebug);
  FEDADMM_LOG(Debug) << "visible debug from logging_test";
  SetLogLevel(original);
}

TEST(LoggingTest, ConcurrentLoggersNeverInterleaveMidLine) {
  // Each emission is ONE fwrite of the full line (util/logging.cc), so N
  // threads hammering the sink must produce whole lines only. Capture
  // stderr and check every thread's every message survived intact.
  const LogLevel original = GetLogLevel();
  SetLogLevel(LogLevel::kInfo);
  constexpr int kThreads = 8;
  constexpr int kMessagesPerThread = 50;

  testing::internal::CaptureStderr();
  {
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([t] {
        for (int m = 0; m < kMessagesPerThread; ++m) {
          FEDADMM_LOG(Info) << "stress|t=" << t << "|m=" << m << "|end";
        }
      });
    }
    for (std::thread& thread : threads) thread.join();
  }
  const std::string captured = testing::internal::GetCapturedStderr();
  SetLogLevel(original);

  // Count intact payloads line by line: a line either carries exactly one
  // complete "stress|t=T|m=M|end" payload or none. Torn writes would split
  // a payload across lines or fuse two into one.
  std::istringstream lines(captured);
  std::string line;
  int intact = 0;
  while (std::getline(lines, line)) {
    const size_t start = line.find("stress|");
    if (start == std::string::npos) continue;  // unrelated log traffic
    EXPECT_EQ(line.find("stress|", start + 1), std::string::npos)
        << "two payloads fused into one line: " << line;
    const size_t end = line.find("|end", start);
    ASSERT_NE(end, std::string::npos) << "payload torn mid-line: " << line;
    ++intact;
  }
  EXPECT_EQ(intact, kThreads * kMessagesPerThread);
}

TEST(LoggingTest, StreamsManyTypes) {
  const LogLevel original = GetLogLevel();
  SetLogLevel(LogLevel::kOff);
  FEDADMM_LOG(Info) << "int=" << 1 << " double=" << 2.5 << " str="
                    << std::string("s") << " bool=" << true;
  SetLogLevel(original);
}

}  // namespace
}  // namespace fedadmm
