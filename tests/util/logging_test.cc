#include "util/logging.h"

#include <gtest/gtest.h>

namespace fedadmm {
namespace {

TEST(LoggingTest, SetAndGetLevel) {
  const LogLevel original = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
  SetLogLevel(LogLevel::kDebug);
  EXPECT_EQ(GetLogLevel(), LogLevel::kDebug);
  SetLogLevel(original);
}

TEST(LoggingTest, SuppressedMessagesDoNotCrash) {
  const LogLevel original = GetLogLevel();
  SetLogLevel(LogLevel::kOff);
  FEDADMM_LOG(Debug) << "hidden " << 42;
  FEDADMM_LOG(Info) << "hidden " << 3.14;
  FEDADMM_LOG(Warning) << "hidden";
  FEDADMM_LOG(Error) << "hidden";
  SetLogLevel(original);
}

TEST(LoggingTest, EmittedMessagesDoNotCrash) {
  const LogLevel original = GetLogLevel();
  SetLogLevel(LogLevel::kDebug);
  FEDADMM_LOG(Debug) << "visible debug from logging_test";
  SetLogLevel(original);
}

TEST(LoggingTest, StreamsManyTypes) {
  const LogLevel original = GetLogLevel();
  SetLogLevel(LogLevel::kOff);
  FEDADMM_LOG(Info) << "int=" << 1 << " double=" << 2.5 << " str="
                    << std::string("s") << " bool=" << true;
  SetLogLevel(original);
}

}  // namespace
}  // namespace fedadmm
