#include "data/loaders.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

namespace fedadmm {
namespace {

/// Writes a big-endian uint32.
void WriteU32Be(std::ofstream& out, uint32_t v) {
  const unsigned char bytes[4] = {
      static_cast<unsigned char>(v >> 24), static_cast<unsigned char>(v >> 16),
      static_cast<unsigned char>(v >> 8), static_cast<unsigned char>(v)};
  out.write(reinterpret_cast<const char*>(bytes), 4);
}

/// Writes a tiny IDX image/label pair: n images of rows x cols, pixel value
/// = (image index * 7 + flat pixel) % 256, label = index % 10.
void WriteTinyIdx(const std::string& images, const std::string& labels, int n,
                  int rows, int cols) {
  std::ofstream img(images, std::ios::binary);
  WriteU32Be(img, 0x00000803);
  WriteU32Be(img, static_cast<uint32_t>(n));
  WriteU32Be(img, static_cast<uint32_t>(rows));
  WriteU32Be(img, static_cast<uint32_t>(cols));
  for (int i = 0; i < n; ++i) {
    for (int p = 0; p < rows * cols; ++p) {
      const unsigned char v = static_cast<unsigned char>((i * 7 + p) % 256);
      img.write(reinterpret_cast<const char*>(&v), 1);
    }
  }
  std::ofstream lab(labels, std::ios::binary);
  WriteU32Be(lab, 0x00000801);
  WriteU32Be(lab, static_cast<uint32_t>(n));
  for (int i = 0; i < n; ++i) {
    const unsigned char v = static_cast<unsigned char>(i % 10);
    lab.write(reinterpret_cast<const char*>(&v), 1);
  }
}

/// Writes a tiny CIFAR-10 binary batch with n records.
void WriteTinyCifar(const std::string& path, int n) {
  std::ofstream out(path, std::ios::binary);
  for (int i = 0; i < n; ++i) {
    const unsigned char label = static_cast<unsigned char>(i % 10);
    out.write(reinterpret_cast<const char*>(&label), 1);
    for (int p = 0; p < 3 * 32 * 32; ++p) {
      const unsigned char v = static_cast<unsigned char>((i + p) % 256);
      out.write(reinterpret_cast<const char*>(&v), 1);
    }
  }
}

class LoadersTest : public ::testing::Test {
 protected:
  std::string Path(const std::string& name) {
    created_.push_back(::testing::TempDir() + "/" + name);
    return created_.back();
  }
  void TearDown() override {
    for (const auto& p : created_) std::remove(p.c_str());
  }
  std::vector<std::string> created_;
};

TEST_F(LoadersTest, LoadsIdxPair) {
  const std::string img = Path("ti-images"), lab = Path("ti-labels");
  WriteTinyIdx(img, lab, /*n=*/12, /*rows=*/4, /*cols=*/5);
  auto result = LoadIdx(img, lab);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const Dataset& d = result.ValueOrDie();
  EXPECT_EQ(d.size(), 12);
  EXPECT_EQ(d.sample_shape(), Shape({1, 4, 5}));
  EXPECT_EQ(d.label(3), 3);
  EXPECT_EQ(d.label(11), 1);
  // Pixel scaling to [0, 1]: image 1, pixel 0 has raw value 7.
  EXPECT_NEAR(d.sample(1)[0], 7.0f / 255.0f, 1e-6f);
}

TEST_F(LoadersTest, IdxMissingFile) {
  EXPECT_TRUE(LoadIdx("/no/such/images", "/no/such/labels")
                  .status()
                  .IsNotFound());
}

TEST_F(LoadersTest, IdxBadMagicRejected) {
  const std::string img = Path("bad-images"), lab = Path("ok-labels");
  {
    std::ofstream out(img, std::ios::binary);
    WriteU32Be(out, 0xDEADBEEF);
    WriteU32Be(out, 1);
    WriteU32Be(out, 2);
    WriteU32Be(out, 2);
  }
  WriteTinyIdx(Path("tmp-img"), lab, 1, 2, 2);
  EXPECT_TRUE(LoadIdx(img, lab).status().IsIoError());
}

TEST_F(LoadersTest, IdxCountMismatchRejected) {
  const std::string img = Path("mm-images"), lab = Path("mm-labels");
  WriteTinyIdx(img, lab, 5, 2, 2);
  const std::string lab2 = Path("mm-labels2");
  {
    std::ofstream out(lab2, std::ios::binary);
    WriteU32Be(out, 0x00000801);
    WriteU32Be(out, 4);  // wrong count
    for (int i = 0; i < 4; ++i) {
      const char z = 0;
      out.write(&z, 1);
    }
  }
  EXPECT_TRUE(LoadIdx(img, lab2).status().IsInvalidArgument());
}

TEST_F(LoadersTest, IdxTruncatedDataRejected) {
  const std::string img = Path("tr-images"), lab = Path("tr-labels");
  WriteTinyIdx(img, lab, 3, 4, 4);
  // Truncate the image file.
  std::ofstream out(img, std::ios::binary | std::ios::in);
  out.seekp(16 + 10);
  out.close();
  // Rewrite shorter: simplest is to write a header claiming more images.
  {
    std::ofstream img2(img, std::ios::binary);
    WriteU32Be(img2, 0x00000803);
    WriteU32Be(img2, 3);
    WriteU32Be(img2, 4);
    WriteU32Be(img2, 4);
    for (int i = 0; i < 20; ++i) {  // only 20 of 48 bytes
      const char z = 1;
      img2.write(&z, 1);
    }
  }
  EXPECT_TRUE(LoadIdx(img, lab).status().IsIoError());
}

TEST_F(LoadersTest, LoadsCifarBatch) {
  const std::string path = Path("cifar_batch.bin");
  WriteTinyCifar(path, 7);
  auto result = LoadCifarBatch(path);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const Dataset& d = result.ValueOrDie();
  EXPECT_EQ(d.size(), 7);
  EXPECT_EQ(d.sample_shape(), Shape({3, 32, 32}));
  EXPECT_EQ(d.label(4), 4);
  // Pixel p of record i has raw value (i + p) % 256.
  EXPECT_NEAR(d.sample(0)[0], 0.0f, 1e-6f);
  EXPECT_NEAR(d.sample(0)[1], 1.0f / 255.0f, 1e-6f);
  EXPECT_NEAR(d.sample(2)[0], 2.0f / 255.0f, 1e-6f);
}

TEST_F(LoadersTest, CifarPartialRecordRejected) {
  const std::string path = Path("cifar_bad.bin");
  WriteTinyCifar(path, 2);
  {
    std::ofstream out(path, std::ios::binary | std::ios::app);
    const char extra[10] = {0};
    out.write(extra, sizeof(extra));
  }
  EXPECT_TRUE(LoadCifarBatch(path).status().IsIoError());
}

TEST_F(LoadersTest, CifarMissingFile) {
  EXPECT_TRUE(LoadCifarBatch("/no/such/batch.bin").status().IsNotFound());
}

TEST_F(LoadersTest, LoadOrSynthesizeFallsBackToSynthetic) {
  const SyntheticSpec spec = SyntheticBenchSpec(1, 8, 2, 1, 0.5f);
  const DataSplit split =
      LoadOrSynthesize("/definitely/not/a/dir", /*cifar_layout=*/false, spec);
  EXPECT_EQ(split.train.size(), 20);
  EXPECT_EQ(split.train.sample_shape(), Shape({1, 8, 8}));
}

TEST_F(LoadersTest, LoadOrSynthesizeEmptyDirGoesStraightToSynthetic) {
  const SyntheticSpec spec = SyntheticBenchSpec(3, 8, 2, 1, 0.5f);
  const DataSplit split = LoadOrSynthesize("", /*cifar_layout=*/true, spec);
  EXPECT_EQ(split.train.sample_shape(), Shape({3, 8, 8}));
}

TEST_F(LoadersTest, CifarDirectoryLayout) {
  const std::string dir = ::testing::TempDir();
  for (int b = 1; b <= 5; ++b) {
    const std::string path = dir + "/data_batch_" + std::to_string(b) + ".bin";
    WriteTinyCifar(path, 6);
    created_.push_back(path);
  }
  WriteTinyCifar(dir + "/test_batch.bin", 4);
  created_.push_back(dir + "/test_batch.bin");

  auto result = LoadCifarDirectory(dir);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->train.size(), 30);  // 5 batches x 6 records
  EXPECT_EQ(result->test.size(), 4);
  EXPECT_EQ(result->train.sample_shape(), Shape({3, 32, 32}));
}

TEST_F(LoadersTest, CifarDirectoryMissingBatchFails) {
  const std::string dir = ::testing::TempDir() + "/empty_cifar";
  EXPECT_FALSE(LoadCifarDirectory(dir).ok());
}

TEST_F(LoadersTest, MnistDirectoryLayout) {
  const std::string dir = ::testing::TempDir();
  WriteTinyIdx(dir + "/train-images-idx3-ubyte",
               dir + "/train-labels-idx1-ubyte", 10, 3, 3);
  WriteTinyIdx(dir + "/t10k-images-idx3-ubyte",
               dir + "/t10k-labels-idx1-ubyte", 4, 3, 3);
  created_.push_back(dir + "/train-images-idx3-ubyte");
  created_.push_back(dir + "/train-labels-idx1-ubyte");
  created_.push_back(dir + "/t10k-images-idx3-ubyte");
  created_.push_back(dir + "/t10k-labels-idx1-ubyte");

  auto result = LoadMnistDirectory(dir);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->train.size(), 10);
  EXPECT_EQ(result->test.size(), 4);
}

}  // namespace
}  // namespace fedadmm
