#include "data/synthetic.h"

#include <gtest/gtest.h>

#include <cmath>

#include "nn/model_zoo.h"

namespace fedadmm {
namespace {

TEST(SyntheticTest, GeneratesRequestedCounts) {
  SyntheticSpec spec = SyntheticBenchSpec(1, 8, 5, 2, 0.5f);
  const DataSplit split = GenerateSynthetic(spec);
  EXPECT_EQ(split.train.size(), 50);
  EXPECT_EQ(split.test.size(), 20);
  EXPECT_EQ(split.train.sample_shape(), Shape({1, 8, 8}));
  EXPECT_EQ(split.train.num_classes(), 10);
}

TEST(SyntheticTest, BalancedClasses) {
  SyntheticSpec spec = SyntheticBenchSpec(1, 8, 7, 3, 0.5f);
  const DataSplit split = GenerateSynthetic(spec);
  for (int count : split.train.ClassCounts()) EXPECT_EQ(count, 7);
  for (int count : split.test.ClassCounts()) EXPECT_EQ(count, 3);
}

TEST(SyntheticTest, DeterministicForSameSpec) {
  SyntheticSpec spec = SyntheticBenchSpec(1, 8, 3, 1, 0.5f);
  const DataSplit a = GenerateSynthetic(spec);
  const DataSplit b = GenerateSynthetic(spec);
  ASSERT_EQ(a.train.size(), b.train.size());
  for (int i = 0; i < a.train.size(); ++i) {
    const auto sa = a.train.sample(i);
    const auto sb = b.train.sample(i);
    for (size_t k = 0; k < sa.size(); ++k) EXPECT_EQ(sa[k], sb[k]);
  }
}

TEST(SyntheticTest, DifferentSeedsDiffer) {
  SyntheticSpec s1 = SyntheticBenchSpec(1, 8, 3, 1, 0.5f);
  SyntheticSpec s2 = s1;
  s2.seed += 1;
  const DataSplit a = GenerateSynthetic(s1);
  const DataSplit b = GenerateSynthetic(s2);
  const auto sa = a.train.sample(0);
  const auto sb = b.train.sample(0);
  double diff = 0.0;
  for (size_t k = 0; k < sa.size(); ++k) {
    diff += std::fabs(static_cast<double>(sa[k]) - sb[k]);
  }
  EXPECT_GT(diff, 0.1);
}

TEST(SyntheticTest, PresetShapesMatchRealDatasets) {
  EXPECT_EQ(GenerateSynthetic(SyntheticMnistSpec(1, 1)).train.sample_shape(),
            Shape({1, 28, 28}));
  EXPECT_EQ(GenerateSynthetic(SyntheticFmnistSpec(1, 1)).train.sample_shape(),
            Shape({1, 28, 28}));
  EXPECT_EQ(GenerateSynthetic(SyntheticCifarSpec(1, 1)).train.sample_shape(),
            Shape({3, 32, 32}));
}

TEST(SyntheticTest, PresetDifficultyOrdering) {
  // CIFAR-like must be noisier than FMNIST-like, which is noisier than
  // MNIST-like (matching the real datasets' relative difficulty).
  EXPECT_LT(SyntheticMnistSpec().noise_stddev,
            SyntheticFmnistSpec().noise_stddev);
  EXPECT_LT(SyntheticFmnistSpec().noise_stddev,
            SyntheticCifarSpec().noise_stddev);
}

TEST(SyntheticTest, TaskIsLearnableByCnn) {
  // A small CNN trained centrally for a few epochs must beat chance by a
  // wide margin — otherwise the federated experiments are meaningless.
  SyntheticSpec spec = SyntheticBenchSpec(1, 12, 20, 10, 0.6f);
  const DataSplit split = GenerateSynthetic(spec);

  Rng rng(99);
  ModelConfig config = BenchCnnConfig(1, 12);
  auto model = BuildModel(config);
  model->Initialize(&rng);

  std::vector<int> all = split.train.AllIndices();
  for (int epoch = 0; epoch < 8; ++epoch) {
    rng.Shuffle(&all);
    for (size_t start = 0; start < all.size(); start += 20) {
      const size_t end = std::min(all.size(), start + 20);
      std::vector<int> batch(all.begin() + static_cast<ptrdiff_t>(start),
                             all.begin() + static_cast<ptrdiff_t>(end));
      model->ZeroGrad();
      model->ForwardBackward(split.train.MakeBatch(batch),
                             split.train.MakeLabelBatch(batch));
      model->SgdStep(0.1f);
    }
  }
  const std::vector<int> test_idx = split.test.AllIndices();
  Tensor logits = model->Predict(split.test.MakeBatch(test_idx));
  const double acc = SoftmaxCrossEntropyLoss::Accuracy(
      logits, split.test.MakeLabelBatch(test_idx));
  EXPECT_GT(acc, 0.5);  // chance is 0.1
}

TEST(SyntheticTest, NoiseControlsDifficulty) {
  // Mean within-class variance should grow with the noise parameter.
  SyntheticSpec lo = SyntheticBenchSpec(1, 8, 10, 1, 0.1f);
  SyntheticSpec hi = SyntheticBenchSpec(1, 8, 10, 1, 2.0f);
  lo.jitter = hi.jitter = false;
  const DataSplit a = GenerateSynthetic(lo);
  const DataSplit b = GenerateSynthetic(hi);

  auto within_class_spread = [](const Dataset& d) {
    // Variance of pixel 0 among samples of class 0.
    double sum = 0.0, sum_sq = 0.0;
    int n = 0;
    for (int i = 0; i < d.size(); ++i) {
      if (d.label(i) != 0) continue;
      const double v = d.sample(i)[0];
      sum += v;
      sum_sq += v * v;
      ++n;
    }
    const double mean = sum / n;
    return sum_sq / n - mean * mean;
  };
  EXPECT_LT(within_class_spread(a.train), within_class_spread(b.train));
}

TEST(SyntheticTest, ToStringDescribesSpec) {
  const std::string s = SyntheticMnistSpec().ToString();
  EXPECT_NE(s.find("28"), std::string::npos);
  EXPECT_NE(s.find("10 classes"), std::string::npos);
}

}  // namespace
}  // namespace fedadmm
