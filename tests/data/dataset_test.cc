#include "data/dataset.h"

#include <gtest/gtest.h>

#include <numeric>
#include <set>

namespace fedadmm {
namespace {

Dataset TinyDataset(int n = 6) {
  Dataset d(Shape({1, 2, 2}), /*num_classes=*/3);
  for (int i = 0; i < n; ++i) {
    std::vector<float> pixels{static_cast<float>(i), 0, 0,
                              static_cast<float>(-i)};
    d.Add(pixels, i % 3);
  }
  return d;
}

TEST(DatasetTest, SizeAndShape) {
  Dataset d = TinyDataset();
  EXPECT_EQ(d.size(), 6);
  EXPECT_EQ(d.sample_shape(), Shape({1, 2, 2}));
  EXPECT_EQ(d.num_classes(), 3);
  EXPECT_EQ(d.SampleNumel(), 4);
}

TEST(DatasetTest, SampleAccess) {
  Dataset d = TinyDataset();
  auto s = d.sample(3);
  ASSERT_EQ(s.size(), 4u);
  EXPECT_FLOAT_EQ(s[0], 3.0f);
  EXPECT_FLOAT_EQ(s[3], -3.0f);
  EXPECT_EQ(d.label(3), 0);
}

TEST(DatasetTest, MakeBatchGathersInOrder) {
  Dataset d = TinyDataset();
  const std::vector<int> idx{4, 0, 2};
  Tensor batch = d.MakeBatch(idx);
  EXPECT_EQ(batch.shape(), Shape({3, 1, 2, 2}));
  EXPECT_FLOAT_EQ(batch.at(0, 0, 0, 0), 4.0f);
  EXPECT_FLOAT_EQ(batch.at(1, 0, 0, 0), 0.0f);
  EXPECT_FLOAT_EQ(batch.at(2, 0, 0, 0), 2.0f);
  EXPECT_EQ(d.MakeLabelBatch(idx), (std::vector<int>{1, 0, 2}));
}

TEST(DatasetTest, AllIndices) {
  Dataset d = TinyDataset(4);
  EXPECT_EQ(d.AllIndices(), (std::vector<int>{0, 1, 2, 3}));
}

TEST(DatasetTest, ClassCounts) {
  Dataset d = TinyDataset(7);  // labels 0,1,2,0,1,2,0
  EXPECT_EQ(d.ClassCounts(), (std::vector<int>{3, 2, 2}));
}

TEST(ClientViewTest, FullBatchGathersAllLocalSamples) {
  Dataset d = TinyDataset();
  ClientView view(&d, {1, 3, 5});
  EXPECT_EQ(view.size(), 3);
  Tensor batch = view.FullBatch();
  EXPECT_EQ(batch.shape().dim(0), 3);
  EXPECT_EQ(view.FullLabels(), (std::vector<int>{1, 0, 2}));
}

TEST(ClientViewTest, EpochBatchesPartitionLocalIndices) {
  Dataset d = TinyDataset(10);
  std::vector<int> indices(10);
  std::iota(indices.begin(), indices.end(), 0);
  ClientView view(&d, indices);
  Rng rng(3);
  const auto batches = view.EpochBatches(/*batch_size=*/3, &rng);
  ASSERT_EQ(batches.size(), 4u);  // 3+3+3+1
  std::multiset<int> seen;
  for (const auto& b : batches) {
    EXPECT_LE(b.size(), 3u);
    for (int i : b) seen.insert(i);
  }
  EXPECT_EQ(seen.size(), 10u);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(seen.count(i), 1u);
}

TEST(ClientViewTest, FullBatchModeWhenBatchSizeNonPositive) {
  Dataset d = TinyDataset(5);
  ClientView view(&d, {0, 1, 2, 3, 4});
  Rng rng(4);
  auto batches = view.EpochBatches(/*batch_size=*/0, &rng);
  ASSERT_EQ(batches.size(), 1u);
  EXPECT_EQ(batches[0].size(), 5u);
  batches = view.EpochBatches(/*batch_size=*/-1, &rng);
  ASSERT_EQ(batches.size(), 1u);
}

TEST(ClientViewTest, OversizeBatchActsAsFullBatch) {
  Dataset d = TinyDataset(4);
  ClientView view(&d, {0, 1, 2, 3});
  Rng rng(5);
  const auto batches = view.EpochBatches(/*batch_size=*/100, &rng);
  ASSERT_EQ(batches.size(), 1u);
  EXPECT_EQ(batches[0].size(), 4u);
}

TEST(ClientViewTest, ShufflingVariesAcrossEpochsButIsSeedDeterministic) {
  Dataset d = TinyDataset(8);
  std::vector<int> indices(8);
  std::iota(indices.begin(), indices.end(), 0);
  ClientView view(&d, indices);

  Rng rng_a(7), rng_b(7);
  const auto a1 = view.EpochBatches(4, &rng_a);
  const auto b1 = view.EpochBatches(4, &rng_b);
  EXPECT_EQ(a1, b1);  // same seed, same order

  const auto a2 = view.EpochBatches(4, &rng_a);
  EXPECT_NE(a1, a2);  // consecutive epochs reshuffle
}

}  // namespace
}  // namespace fedadmm
