#include "data/partition.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

namespace fedadmm {
namespace {

/// Labels for n samples, round-robin over `classes`.
std::vector<int> RoundRobinLabels(int n, int classes) {
  std::vector<int> labels(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) labels[static_cast<size_t>(i)] = i % classes;
  return labels;
}

/// Checks that a partition is a disjoint cover of [0, n).
void ExpectDisjointCover(const Partition& p, int n) {
  std::vector<int> seen(static_cast<size_t>(n), 0);
  for (const auto& client : p) {
    for (int idx : client) {
      ASSERT_GE(idx, 0);
      ASSERT_LT(idx, n);
      ++seen[static_cast<size_t>(idx)];
    }
  }
  for (int i = 0; i < n; ++i) {
    EXPECT_EQ(seen[static_cast<size_t>(i)], 1) << "sample " << i;
  }
}

TEST(PartitionIidTest, DisjointCoverAndBalance) {
  Rng rng(1);
  const auto p = PartitionIid(103, 10, &rng).ValueOrDie();
  ASSERT_EQ(p.size(), 10u);
  ExpectDisjointCover(p, 103);
  for (const auto& client : p) {
    EXPECT_GE(client.size(), 10u);
    EXPECT_LE(client.size(), 11u);
  }
}

TEST(PartitionIidTest, LabelMixIsDiverse) {
  Rng rng(2);
  const auto labels = RoundRobinLabels(1000, 10);
  const auto p = PartitionIid(1000, 10, &rng).ValueOrDie();
  const auto stats = ComputePartitionStats(p, labels);
  // Each IID client (100 samples) should see nearly all 10 classes.
  EXPECT_GT(stats.mean_distinct_labels, 9.0);
}

TEST(PartitionIidTest, Errors) {
  Rng rng(3);
  EXPECT_TRUE(PartitionIid(5, 0, &rng).status().IsInvalidArgument());
  EXPECT_TRUE(PartitionIid(5, 6, &rng).status().IsInvalidArgument());
}

TEST(PartitionShardsTest, TwoShardsGiveAtMostTwoClasses) {
  Rng rng(4);
  // 1000 samples, 10 classes, contiguous by label after sorting: shards of
  // 50 samples contain at most 2 labels each; 2 shards -> <= 4 but in the
  // paper's regime (shard = half a class) clients mostly see 2 classes.
  std::vector<int> labels;
  for (int c = 0; c < 10; ++c) {
    labels.insert(labels.end(), 100, c);
  }
  const auto p = PartitionShards(labels, 10, 2, &rng).ValueOrDie();
  ExpectDisjointCover(p, 1000);
  const auto stats = ComputePartitionStats(p, labels);
  // Pathological split: far fewer distinct labels than IID.
  EXPECT_LE(stats.mean_distinct_labels, 3.0);
  EXPECT_GE(stats.mean_distinct_labels, 1.0);
}

TEST(PartitionShardsTest, EqualSizes) {
  Rng rng(5);
  const auto labels = RoundRobinLabels(600, 10);
  const auto p = PartitionShards(labels, 30, 2, &rng).ValueOrDie();
  for (const auto& client : p) EXPECT_EQ(client.size(), 20u);
}

TEST(PartitionShardsTest, Errors) {
  Rng rng(6);
  const auto labels = RoundRobinLabels(10, 2);
  EXPECT_TRUE(
      PartitionShards(labels, 0, 2, &rng).status().IsInvalidArgument());
  EXPECT_TRUE(
      PartitionShards(labels, 20, 2, &rng).status().IsInvalidArgument());
}

TEST(PartitionShardsTest, ShuffleDependsOnSeed) {
  const auto labels = RoundRobinLabels(400, 10);
  Rng rng_a(7), rng_b(8);
  const auto pa = PartitionShards(labels, 20, 2, &rng_a).ValueOrDie();
  const auto pb = PartitionShards(labels, 20, 2, &rng_b).ValueOrDie();
  EXPECT_NE(pa, pb);
  Rng rng_c(7);
  const auto pc = PartitionShards(labels, 20, 2, &rng_c).ValueOrDie();
  EXPECT_EQ(pa, pc);
}

TEST(PartitionImbalancedTest, ReproducesTable6Statistics) {
  // Paper Table VI (FMNIST row): 200 clients, 60,000 samples, 10,000
  // shards of 6 -> mean 300, stdev ≈ 171.
  Rng rng(9);
  std::vector<int> labels;
  for (int c = 0; c < 10; ++c) labels.insert(labels.end(), 6000, c);
  const auto p =
      PartitionImbalancedGroups(labels, 200, 10000, &rng).ValueOrDie();
  ExpectDisjointCover(p, 60000);
  const auto stats = ComputePartitionStats(p, labels);
  EXPECT_EQ(stats.total_samples, 60000);
  EXPECT_NEAR(stats.mean_size, 300.0, 1.0);
  EXPECT_NEAR(stats.stddev_size, 171.0, 6.0);
}

TEST(PartitionImbalancedTest, GroupMembersScaleWithGroupIndex) {
  Rng rng(10);
  std::vector<int> labels;
  for (int c = 0; c < 10; ++c) labels.insert(labels.end(), 200, c);
  // 20 clients, 10 groups; shards = 2 * (1+...+10) = 110 + 10 leftover.
  const auto p = PartitionImbalancedGroups(labels, 20, 120, &rng).ValueOrDie();
  ExpectDisjointCover(p, 2000);
  // Group 1 members (clients 0, 1) must hold fewer samples than group 9
  // members (clients 16, 17).
  EXPECT_LT(p[0].size() + p[1].size(), p[16].size() + p[17].size());
}

TEST(PartitionImbalancedTest, Errors) {
  Rng rng(11);
  const auto labels = RoundRobinLabels(1000, 10);
  EXPECT_TRUE(PartitionImbalancedGroups(labels, 3, 100, &rng)
                  .status()
                  .IsInvalidArgument());  // odd clients
  EXPECT_TRUE(PartitionImbalancedGroups(labels, 20, 10, &rng)
                  .status()
                  .IsInvalidArgument());  // too few shards
}

TEST(PartitionDirichletTest, DisjointCover) {
  Rng rng(12);
  const auto labels = RoundRobinLabels(500, 5);
  const auto p = PartitionDirichlet(labels, 8, 5, 0.5, &rng).ValueOrDie();
  ExpectDisjointCover(p, 500);
}

TEST(PartitionDirichletTest, SmallAlphaIsMoreSkewedThanLarge) {
  const auto labels = RoundRobinLabels(5000, 10);
  Rng rng_a(13), rng_b(13);
  const auto skewed =
      PartitionDirichlet(labels, 20, 10, 0.05, &rng_a).ValueOrDie();
  const auto uniform =
      PartitionDirichlet(labels, 20, 10, 100.0, &rng_b).ValueOrDie();
  const auto s1 = ComputePartitionStats(skewed, labels);
  const auto s2 = ComputePartitionStats(uniform, labels);
  EXPECT_LT(s1.mean_distinct_labels, s2.mean_distinct_labels);
}

TEST(PartitionDirichletTest, Errors) {
  Rng rng(14);
  const auto labels = RoundRobinLabels(100, 4);
  EXPECT_TRUE(
      PartitionDirichlet(labels, 0, 4, 1.0, &rng).status().IsInvalidArgument());
  EXPECT_TRUE(PartitionDirichlet(labels, 5, 4, -1.0, &rng)
                  .status()
                  .IsInvalidArgument());
  std::vector<int> bad_labels{0, 1, 7};
  EXPECT_TRUE(PartitionDirichlet(bad_labels, 2, 4, 1.0, &rng)
                  .status()
                  .IsInvalidArgument());
}

TEST(PartitionStatsTest, ComputesBasicMoments) {
  Partition p{{0, 1, 2}, {3}, {4, 5}};
  const auto stats = ComputePartitionStats(p, {});
  EXPECT_EQ(stats.num_clients, 3);
  EXPECT_EQ(stats.total_samples, 6);
  EXPECT_EQ(stats.min_size, 1);
  EXPECT_EQ(stats.max_size, 3);
  EXPECT_DOUBLE_EQ(stats.mean_size, 2.0);
  EXPECT_NEAR(stats.stddev_size, std::sqrt(2.0 / 3.0), 1e-9);
  EXPECT_FALSE(stats.ToString().empty());
}

}  // namespace
}  // namespace fedadmm
