/// End-to-end federated training of CNNs on the synthetic image task: every
/// algorithm must train to well above chance, and FedADMM must match or beat
/// the baselines in rounds-to-accuracy on the pathological non-IID split —
/// the paper's central experimental claim at test scale.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "fl/algorithms/fedavg.h"
#include "fl/algorithms/fedprox.h"
#include "fl/algorithms/fedsgd.h"
#include "fl/algorithms/scaffold.h"
#include "integration/harness.h"

namespace fedadmm {
namespace {

using testing::MakeTestBed;
using testing::RunOnBed;
using testing::TestAdmmOptions;
using testing::TestLocalSpec;

TEST(EndToEndTest, FedAdmmTrainsCnnAboveChanceIid) {
  auto bed = MakeTestBed(/*clients=*/10, /*iid=*/true);
  FedAdmm algo(TestAdmmOptions());
  const History history = RunOnBed(&bed, &algo, 0.3, 25);
  EXPECT_GT(history.BestAccuracy(), 0.5);  // chance = 0.1
}

TEST(EndToEndTest, FedAdmmTrainsCnnAboveChanceNonIid) {
  auto bed = MakeTestBed(/*clients=*/10, /*iid=*/false);
  FedAdmm algo(TestAdmmOptions());
  const History history = RunOnBed(&bed, &algo, 0.3, 35);
  EXPECT_GT(history.BestAccuracy(), 0.4);
}

TEST(EndToEndTest, AllBaselinesTrainAboveChanceIid) {
  auto bed = MakeTestBed(10, true);
  FedAvg avg(TestLocalSpec());
  FedProx prox(TestLocalSpec(), 0.05f);
  Scaffold scaffold(TestLocalSpec());
  FedSgd sgd(0.1f);
  EXPECT_GT(RunOnBed(&bed, &avg, 0.3, 25).BestAccuracy(), 0.4);
  EXPECT_GT(RunOnBed(&bed, &prox, 0.3, 25).BestAccuracy(), 0.4);
  EXPECT_GT(RunOnBed(&bed, &scaffold, 0.3, 25).BestAccuracy(), 0.4);
  EXPECT_GT(RunOnBed(&bed, &sgd, 0.3, 40).BestAccuracy(), 0.25);
}

TEST(EndToEndTest, FedAdmmAtLeastMatchesFedAvgNonIid) {
  // Paper Table III (scaled): rounds to reach the target on the 2-shard
  // split. FedADMM must not be slower than FedAvg.
  auto bed = MakeTestBed(12, /*iid=*/false, /*seed=*/9);
  const double target = 0.45;
  const int budget = 40;

  FedAdmm admm(TestAdmmOptions());
  const History h_admm = RunOnBed(&bed, &admm, 0.25, budget, 11, target);
  int r_admm = h_admm.RoundsToAccuracy(target);
  if (r_admm < 0) r_admm = budget + 1;

  FedAvg avg(TestLocalSpec());
  const History h_avg = RunOnBed(&bed, &avg, 0.25, budget, 11, target);
  int r_avg = h_avg.RoundsToAccuracy(target);
  if (r_avg < 0) r_avg = budget + 1;

  EXPECT_LE(r_admm, r_avg);
  EXPECT_LE(r_admm, budget);  // FedADMM must actually reach the target
}

TEST(EndToEndTest, DeterministicAcrossThreadCounts) {
  auto bed = MakeTestBed(8, true);
  auto run = [&bed](int threads) {
    FedAdmm algo(TestAdmmOptions());
    UniformFractionSelector selector(bed.problem->num_clients(), 0.25);
    SimulationConfig config;
    config.max_rounds = 5;
    config.seed = 13;
    config.num_threads = threads;
    Simulation sim(bed.problem.get(), &algo, &selector, config);
    auto history = sim.Run();
    EXPECT_TRUE(history.ok());
    return sim.theta();
  };
  const auto theta1 = run(1);
  const auto theta4 = run(4);
  ASSERT_EQ(theta1.size(), theta4.size());
  for (size_t i = 0; i < theta1.size(); ++i) {
    EXPECT_FLOAT_EQ(theta1[i], theta4[i]) << "coord " << i;
  }
}

TEST(EndToEndTest, HistoryCsvRoundTripsThroughDisk) {
  auto bed = MakeTestBed(8, true);
  FedAdmm algo(TestAdmmOptions());
  const History history = RunOnBed(&bed, &algo, 0.25, 5);
  const std::string path = ::testing::TempDir() + "/e2e_history.csv";
  ASSERT_TRUE(history.WriteCsv(path).ok());
  std::ifstream in(path);
  int lines = 0;
  std::string line;
  while (std::getline(in, line)) ++lines;
  EXPECT_EQ(lines, 1 + history.size());
  std::remove(path.c_str());
}

TEST(EndToEndTest, TestAccuracyTrendsUpward) {
  // (Client train losses interpolate to ~0 within a round on the
  // overparameterized test model, so the global test metric is the
  // meaningful trend indicator.)
  auto bed = MakeTestBed(10, true);
  FedAdmm algo(TestAdmmOptions());
  const History history = RunOnBed(&bed, &algo, 0.3, 20);
  const auto& recs = history.records();
  double early = 0.0, late = 0.0;
  for (int i = 0; i < 5; ++i) {
    early += recs[static_cast<size_t>(i)].test_accuracy;
    late += recs[recs.size() - 1 - static_cast<size_t>(i)].test_accuracy;
  }
  EXPECT_GT(late, early);
}

}  // namespace
}  // namespace fedadmm
