/// System- and statistical-heterogeneity behaviour end to end: variable
/// local work (Section V-A), pathological non-IID splits, and the Table VI
/// imbalanced-volume setting.

#include <gtest/gtest.h>

#include <set>

#include "fl/algorithms/fedavg.h"
#include "integration/harness.h"

namespace fedadmm {
namespace {

using testing::MakeTestBed;
using testing::RunOnBed;
using testing::TestAdmmOptions;
using testing::TestLocalSpec;

TEST(HeterogeneityTest, VariableEpochsActuallyVary) {
  auto bed = MakeTestBed(10, true);
  FedAdmmOptions options = TestAdmmOptions(0.05f, /*epochs=*/6);
  FedAdmm algo(options);

  AlgorithmContext ctx;
  ctx.num_clients = bed.problem->num_clients();
  ctx.dim = bed.problem->dim();
  Rng init(1);
  std::vector<float> theta = bed.problem->InitialParameters(&init);
  algo.Setup(ctx, theta);

  std::set<int> epoch_counts;
  for (int round = 0; round < 12; ++round) {
    auto lp = bed.problem->MakeLocalProblem(round % 10, 0);
    const UpdateMessage msg = algo.ClientUpdate(round % 10, round, theta,
                                                lp.get(), Rng(50 + round));
    epoch_counts.insert(msg.epochs_run);
    EXPECT_GE(msg.epochs_run, 1);
    EXPECT_LE(msg.epochs_run, 6);
  }
  EXPECT_GE(epoch_counts.size(), 3u);
}

TEST(HeterogeneityTest, FedAdmmToleratesStragglersDoingOneEpoch) {
  // Under system heterogeneity some clients do E=1; training still works.
  auto bed = MakeTestBed(10, /*iid=*/false);
  FedAdmmOptions options = TestAdmmOptions(0.05f, /*epochs=*/1);
  options.local.variable_epochs = false;
  FedAdmm algo(options);
  const History history = RunOnBed(&bed, &algo, 0.3, 30);
  EXPECT_GT(history.BestAccuracy(), 0.3);
}

TEST(HeterogeneityTest, ImbalancedVolumesTrainEndToEnd) {
  // Table VI / Fig. 10 setting scaled down: group-indexed shard counts.
  DataSplit split =
      GenerateSynthetic(SyntheticBenchSpec(1, 8, 40, 6, 0.6f));
  Rng rng(3);
  // 20 clients, 10 groups: shards = 2*(1+..+9) + leftovers of 120.
  Partition partition =
      PartitionImbalancedGroups(split.train.labels(), 20, 120, &rng)
          .ValueOrDie();
  const auto stats = ComputePartitionStats(partition, split.train.labels());
  EXPECT_GT(stats.stddev_size, 0.3 * stats.mean_size);  // heavy imbalance

  ModelConfig config = BenchCnnConfig(1, 8);
  config.conv1_channels = 4;
  config.conv2_channels = 6;
  config.hidden = 16;
  NnFederatedProblem problem(config, &split.train, &split.test, partition, 4);

  FedAdmm algo(TestAdmmOptions());
  UniformFractionSelector selector(20, 0.25);
  SimulationConfig sim_config;
  sim_config.max_rounds = 30;
  sim_config.seed = 4;
  sim_config.num_threads = 4;
  Simulation sim(&problem, &algo, &selector, sim_config);
  auto history = sim.Run();
  ASSERT_TRUE(history.ok());
  EXPECT_GT(history->BestAccuracy(), 0.35);
}

TEST(HeterogeneityTest, NonIidIsHarderThanIidForFedAvg) {
  // Statistical heterogeneity hurts FedAvg (the paper's motivation): on the
  // same budget, non-IID accuracy must lag IID accuracy.
  auto iid = MakeTestBed(12, true, /*seed=*/21);
  auto noniid = MakeTestBed(12, false, /*seed=*/21);
  FedAvg a1(TestLocalSpec()), a2(TestLocalSpec());
  const double acc_iid = RunOnBed(&iid, &a1, 0.25, 15).BestAccuracy();
  const double acc_noniid = RunOnBed(&noniid, &a2, 0.25, 15).BestAccuracy();
  EXPECT_GT(acc_iid, acc_noniid);
}

TEST(HeterogeneityTest, ClientsSeeAtMostTwoClassesUnderShardSplit) {
  auto bed = MakeTestBed(12, /*iid=*/false);
  const auto stats =
      ComputePartitionStats(bed.partition, bed.split->train.labels());
  EXPECT_LE(stats.mean_distinct_labels, 3.0);
}

}  // namespace
}  // namespace fedadmm
