/// Communication accounting across algorithms — the paper's Section III-B
/// claim: FedADMM's per-round communication equals FedAvg/FedProx's, while
/// SCAFFOLD doubles it. Byte expectations are derived from the wire codec
/// (src/comm) rather than hard-coded 4·dim products, so the same tests hold
/// whether or not compression is attached; the identity codec's
/// WireBytes(d) == 4d is itself pinned by tests/comm/wire_format_test.cc.

#include <gtest/gtest.h>

#include "comm/identity.h"
#include "comm/quantize.h"
#include "fl/algorithms/fedavg.h"
#include "fl/algorithms/fedprox.h"
#include "fl/algorithms/scaffold.h"
#include "integration/harness.h"

namespace fedadmm {
namespace {

using testing::MakeTestBed;
using testing::RunOnBed;
using testing::TestAdmmOptions;
using testing::TestLocalSpec;

class CommAccountingTest : public ::testing::Test {
 protected:
  void SetUp() override {
    bed_ = MakeTestBed(10, true);
    // The uncompressed wire: one model-sized fp32 vector per direction.
    dim_bytes_ = IdentityCodec().WireBytes(bed_.problem->dim());
  }
  testing::TestBed bed_;
  int64_t dim_bytes_ = 0;
};

TEST_F(CommAccountingTest, FedAdmmMatchesFedAvgExactly) {
  FedAdmm admm(TestAdmmOptions());
  FedAvg avg(TestLocalSpec());
  const History h_admm = RunOnBed(&bed_, &admm, 0.3, 4);
  const History h_avg = RunOnBed(&bed_, &avg, 0.3, 4);
  EXPECT_EQ(h_admm.TotalUploadBytes(), h_avg.TotalUploadBytes());
  EXPECT_EQ(h_admm.TotalDownloadBytes(), h_avg.TotalDownloadBytes());
}

TEST_F(CommAccountingTest, PerRoundBytesAreSelectedTimesWire) {
  FedAdmm admm(TestAdmmOptions());
  const History history = RunOnBed(&bed_, &admm, 0.3, 4);
  for (const RoundRecord& r : history.records()) {
    EXPECT_EQ(r.upload_bytes, r.num_selected * dim_bytes_);
    EXPECT_EQ(r.download_bytes, r.num_selected * dim_bytes_);
    // No codec attached: wire and raw columns coincide.
    EXPECT_EQ(r.upload_bytes_raw, r.upload_bytes);
    EXPECT_EQ(r.download_bytes_raw, r.download_bytes);
  }
}

TEST_F(CommAccountingTest, ScaffoldDoublesBothDirections) {
  Scaffold scaffold(TestLocalSpec());
  const History history = RunOnBed(&bed_, &scaffold, 0.3, 4);
  for (const RoundRecord& r : history.records()) {
    EXPECT_EQ(r.upload_bytes, 2 * r.num_selected * dim_bytes_);
    EXPECT_EQ(r.download_bytes, 2 * r.num_selected * dim_bytes_);
  }
}

TEST_F(CommAccountingTest, FedProxMatchesFedAvg) {
  FedProx prox(TestLocalSpec(), 0.1f);
  FedAvg avg(TestLocalSpec());
  const History h_prox = RunOnBed(&bed_, &prox, 0.3, 4);
  const History h_avg = RunOnBed(&bed_, &avg, 0.3, 4);
  EXPECT_EQ(h_prox.TotalUploadBytes(), h_avg.TotalUploadBytes());
}

TEST_F(CommAccountingTest, CommunicationScalesWithFraction) {
  FedAdmm a1(TestAdmmOptions()), a2(TestAdmmOptions());
  const History h_small = RunOnBed(&bed_, &a1, 0.1, 4);
  const History h_large = RunOnBed(&bed_, &a2, 0.5, 4);
  EXPECT_EQ(h_small.TotalUploadBytes() * 5, h_large.TotalUploadBytes());
}

TEST_F(CommAccountingTest, UplinkOnlyCompressionMakesTrafficAsymmetric) {
  // Compressing only the uplink (the deployment default: the broadcast is
  // cheap, client uploads are metered) must shrink upload_bytes to the
  // codec's wire size while download stays at raw fp32 — and the raw
  // columns must keep reporting the uncompressed equivalent.
  FedAdmm admm(TestAdmmOptions());
  UniformQuantCodec q8(8);
  const History history =
      RunOnBed(&bed_, &admm, 0.3, 4, 7, -1.0, &q8, nullptr);
  const int64_t wire = q8.WireBytes(bed_.problem->dim());
  ASSERT_LT(wire, dim_bytes_);
  for (const RoundRecord& r : history.records()) {
    EXPECT_EQ(r.upload_bytes, r.num_selected * wire);
    EXPECT_EQ(r.download_bytes, r.num_selected * dim_bytes_);
    EXPECT_LT(r.upload_bytes, r.download_bytes);
    EXPECT_EQ(r.upload_bytes_raw, r.num_selected * dim_bytes_);
    EXPECT_EQ(r.download_bytes_raw, r.num_selected * dim_bytes_);
  }
  EXPECT_LT(history.TotalUploadBytes(), history.TotalDownloadBytes());
  EXPECT_EQ(history.TotalUploadBytesRaw(), history.TotalDownloadBytesRaw());
}

}  // namespace
}  // namespace fedadmm
