/// Communication accounting across algorithms — the paper's Section III-B
/// claim: FedADMM's per-round communication equals FedAvg/FedProx's, while
/// SCAFFOLD doubles it.

#include <gtest/gtest.h>

#include "fl/algorithms/fedavg.h"
#include "fl/algorithms/fedprox.h"
#include "fl/algorithms/scaffold.h"
#include "integration/harness.h"

namespace fedadmm {
namespace {

using testing::MakeTestBed;
using testing::RunOnBed;
using testing::TestAdmmOptions;
using testing::TestLocalSpec;

class CommAccountingTest : public ::testing::Test {
 protected:
  void SetUp() override {
    bed_ = MakeTestBed(10, true);
    dim_bytes_ = bed_.problem->dim() * static_cast<int64_t>(sizeof(float));
  }
  testing::TestBed bed_;
  int64_t dim_bytes_ = 0;
};

TEST_F(CommAccountingTest, FedAdmmMatchesFedAvgExactly) {
  FedAdmm admm(TestAdmmOptions());
  FedAvg avg(TestLocalSpec());
  const History h_admm = RunOnBed(&bed_, &admm, 0.3, 4);
  const History h_avg = RunOnBed(&bed_, &avg, 0.3, 4);
  EXPECT_EQ(h_admm.TotalUploadBytes(), h_avg.TotalUploadBytes());
  EXPECT_EQ(h_admm.TotalDownloadBytes(), h_avg.TotalDownloadBytes());
}

TEST_F(CommAccountingTest, PerRoundBytesAreSelectedTimesDim) {
  FedAdmm admm(TestAdmmOptions());
  const History history = RunOnBed(&bed_, &admm, 0.3, 4);
  for (const RoundRecord& r : history.records()) {
    EXPECT_EQ(r.upload_bytes, r.num_selected * dim_bytes_);
    EXPECT_EQ(r.download_bytes, r.num_selected * dim_bytes_);
  }
}

TEST_F(CommAccountingTest, ScaffoldDoublesBothDirections) {
  Scaffold scaffold(TestLocalSpec());
  const History history = RunOnBed(&bed_, &scaffold, 0.3, 4);
  for (const RoundRecord& r : history.records()) {
    EXPECT_EQ(r.upload_bytes, 2 * r.num_selected * dim_bytes_);
    EXPECT_EQ(r.download_bytes, 2 * r.num_selected * dim_bytes_);
  }
}

TEST_F(CommAccountingTest, FedProxMatchesFedAvg) {
  FedProx prox(TestLocalSpec(), 0.1f);
  FedAvg avg(TestLocalSpec());
  const History h_prox = RunOnBed(&bed_, &prox, 0.3, 4);
  const History h_avg = RunOnBed(&bed_, &avg, 0.3, 4);
  EXPECT_EQ(h_prox.TotalUploadBytes(), h_avg.TotalUploadBytes());
}

TEST_F(CommAccountingTest, CommunicationScalesWithFraction) {
  FedAdmm a1(TestAdmmOptions()), a2(TestAdmmOptions());
  const History h_small = RunOnBed(&bed_, &a1, 0.1, 4);
  const History h_large = RunOnBed(&bed_, &a2, 0.5, 4);
  EXPECT_EQ(h_small.TotalUploadBytes() * 5, h_large.TotalUploadBytes());
}

}  // namespace
}  // namespace fedadmm
