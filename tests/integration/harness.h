/// \file harness.h
/// \brief Shared scaffolding for integration tests: builds a small synthetic
/// federated image-classification task and runs algorithms end to end.

#ifndef FEDADMM_TESTS_INTEGRATION_HARNESS_H_
#define FEDADMM_TESTS_INTEGRATION_HARNESS_H_

#include <memory>

#include "comm/codec.h"
#include "core/fedadmm.h"
#include "data/partition.h"
#include "data/synthetic.h"
#include "fl/nn_problem.h"
#include "fl/selection.h"
#include "fl/simulation.h"

namespace fedadmm::testing {

/// \brief A self-contained federated task for tests.
///
/// The split lives behind a unique_ptr so that moving a TestBed (e.g.
/// assigning it to a fixture member) does not relocate the datasets the
/// problem points at.
struct TestBed {
  std::unique_ptr<DataSplit> split;
  Partition partition;
  std::unique_ptr<NnFederatedProblem> problem;
  ModelConfig model_config;
};

/// Builds a 10-class image task over `clients` clients.
///
/// Default geometry follows the operating regime where the primal-dual
/// methods behave as in the paper: an overparameterized (wide MLP)
/// classifier in the interpolation regime, 12x12 images, a noisy enough
/// task that clients do not trivially solve it (see DESIGN.md §5). With
/// `cnn = true` the bed uses the scaled two-conv CNN instead.
inline TestBed MakeTestBed(int clients, bool iid, uint64_t seed = 5,
                           int per_class = 12, float noise = 1.2f,
                           bool cnn = false) {
  TestBed bed;
  bed.split = std::make_unique<DataSplit>(GenerateSynthetic(
      SyntheticBenchSpec(1, 12, per_class, /*test_per_class=*/10, noise)));
  Rng rng(seed);
  bed.partition =
      iid ? PartitionIid(bed.split->train.size(), clients, &rng).ValueOrDie()
          : PartitionShards(bed.split->train.labels(), clients,
                            /*shards_per_client=*/2, &rng)
                .ValueOrDie();
  if (cnn) {
    bed.model_config = BenchCnnConfig(1, 12);
  } else {
    bed.model_config.arch = ModelConfig::Arch::kMlp;
    bed.model_config.in_channels = 1;
    bed.model_config.height = 12;
    bed.model_config.width = 12;
    bed.model_config.mlp_hidden = 128;
    bed.model_config.classes = 10;
  }
  bed.problem = std::make_unique<NnFederatedProblem>(
      bed.model_config, &bed.split->train, &bed.split->test, bed.partition,
      /*num_workers=*/4);
  return bed;
}

/// Runs an algorithm on the test bed; returns the history. Optional
/// uplink/downlink codecs (src/comm) are attached when non-null.
inline History RunOnBed(TestBed* bed, FederatedAlgorithm* algo,
                        double fraction, int rounds, uint64_t seed = 7,
                        double target_accuracy = -1.0,
                        UpdateCodec* uplink = nullptr,
                        UpdateCodec* downlink = nullptr) {
  UniformFractionSelector selector(bed->problem->num_clients(), fraction);
  SimulationConfig config;
  config.max_rounds = rounds;
  config.seed = seed;
  config.target_accuracy = target_accuracy;
  config.num_threads = 4;
  Simulation sim(bed->problem.get(), algo, &selector, config);
  if (uplink) sim.set_uplink_codec(uplink);
  if (downlink) sim.set_downlink_codec(downlink);
  return std::move(sim.Run()).ValueOrDie();
}

/// The paper's default local hyperparameters scaled for tests.
inline LocalTrainSpec TestLocalSpec(int epochs = 5, int batch = 5,
                                    float lr = 0.1f) {
  LocalTrainSpec local;
  local.learning_rate = lr;
  local.batch_size = batch;
  local.max_epochs = epochs;
  return local;
}

/// FedADMM options matching the paper's defaults, scaled for tests.
inline FedAdmmOptions TestAdmmOptions(float rho = 1.0f, int epochs = 5) {
  FedAdmmOptions options;
  options.local = TestLocalSpec(epochs);
  options.local.variable_epochs = true;
  options.rho = StepSchedule(rho);
  options.eta = StepSchedule(1.0);
  return options;
}

}  // namespace fedadmm::testing

#endif  // FEDADMM_TESTS_INTEGRATION_HARNESS_H_
