/// \file heterogeneity_comparison.cpp
/// \brief Reproduces the paper's headline experiment at example scale:
/// FedADMM vs FedSGD/FedAvg/FedProx/SCAFFOLD on IID and pathological
/// non-IID (2-shard) partitions, reporting rounds-to-target-accuracy and
/// communication cost — a miniature of Table III.
///
/// Run: ./heterogeneity_comparison [rounds] [clients]

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <vector>

#include "core/fedadmm.h"
#include "data/partition.h"
#include "data/synthetic.h"
#include "fl/algorithms/fedavg.h"
#include "fl/algorithms/fedprox.h"
#include "fl/algorithms/fedsgd.h"
#include "fl/algorithms/scaffold.h"
#include "fl/nn_problem.h"
#include "fl/selection.h"
#include "fl/simulation.h"

namespace {

using namespace fedadmm;

LocalTrainSpec MakeLocal(bool variable_epochs) {
  LocalTrainSpec local;
  local.learning_rate = 0.05f;
  local.batch_size = 10;
  local.max_epochs = 5;
  local.variable_epochs = variable_epochs;
  return local;
}

struct Row {
  std::string name;
  int rounds_to_target;
  double best_accuracy;
  long long upload_bytes;
};

Row RunOne(const std::string& name, FederatedAlgorithm* algo,
           NnFederatedProblem* problem, int rounds, double target,
           uint64_t seed) {
  UniformFractionSelector selector(problem->num_clients(), 0.2);
  SimulationConfig config;
  config.max_rounds = rounds;
  config.seed = seed;
  Simulation sim(problem, algo, &selector, config);
  const History history = std::move(sim.Run()).ValueOrDie();
  return Row{name, history.RoundsToAccuracy(target), history.BestAccuracy(),
             static_cast<long long>(history.TotalUploadBytes())};
}

void RunSetting(bool iid, int rounds, int clients, double target) {
  const DataSplit split = GenerateSynthetic(
      SyntheticBenchSpec(1, 12, /*train_per_class=*/12 * clients,
                         /*test_per_class=*/20, 0.9f));
  Rng rng(13);
  const Partition partition =
      iid ? PartitionIid(split.train.size(), clients, &rng).ValueOrDie()
          : PartitionShards(split.train.labels(), clients, 2, &rng)
                .ValueOrDie();
  const ModelConfig model = BenchCnnConfig(1, 12);

  std::vector<Row> rows;
  {
    NnFederatedProblem problem(model, &split.train, &split.test, partition, 4);
    FedSgd algo(0.05f);
    rows.push_back(RunOne("FedSGD", &algo, &problem, rounds, target, 3));
  }
  {
    NnFederatedProblem problem(model, &split.train, &split.test, partition, 4);
    FedAdmmOptions options;
    options.local = MakeLocal(/*variable_epochs=*/true);
    options.rho = StepSchedule(0.05);
    FedAdmm algo(options);
    rows.push_back(RunOne("FedADMM", &algo, &problem, rounds, target, 3));
  }
  {
    NnFederatedProblem problem(model, &split.train, &split.test, partition, 4);
    FedAvg algo(MakeLocal(false));
    rows.push_back(RunOne("FedAvg", &algo, &problem, rounds, target, 3));
  }
  {
    NnFederatedProblem problem(model, &split.train, &split.test, partition, 4);
    FedProx algo(MakeLocal(true), 0.1f);
    rows.push_back(RunOne("FedProx", &algo, &problem, rounds, target, 3));
  }
  {
    NnFederatedProblem problem(model, &split.train, &split.test, partition, 4);
    Scaffold algo(MakeLocal(false));
    rows.push_back(RunOne("SCAFFOLD", &algo, &problem, rounds, target, 3));
  }

  std::printf("\n=== %s, %d clients, target accuracy %.0f%% ===\n",
              iid ? "IID" : "non-IID (2-shard)", clients, target * 100);
  std::printf("%-10s %-18s %-10s %s\n", "method", "rounds-to-target",
              "best acc", "upload bytes");
  for (const Row& r : rows) {
    char rounds_str[16];
    if (r.rounds_to_target < 0) {
      std::snprintf(rounds_str, sizeof(rounds_str), "%d+", rounds);
    } else {
      std::snprintf(rounds_str, sizeof(rounds_str), "%d", r.rounds_to_target);
    }
    std::printf("%-10s %-18s %-10.3f %lld\n", r.name.c_str(), rounds_str,
                r.best_accuracy, r.upload_bytes);
  }
}

}  // namespace

int main(int argc, char** argv) {
  const int rounds = argc > 1 ? std::atoi(argv[1]) : 40;
  const int clients = argc > 2 ? std::atoi(argv[2]) : 30;
  RunSetting(/*iid=*/true, rounds, clients, /*target=*/0.6);
  RunSetting(/*iid=*/false, rounds, clients, /*target=*/0.5);
  return 0;
}
