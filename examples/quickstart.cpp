/// \file quickstart.cpp
/// \brief Minimal FedADMM session: 20 clients, IID synthetic images.
///
/// Demonstrates the core workflow of the library:
///   1. generate (or load) a dataset and partition it across clients,
///   2. pick a model from the zoo,
///   3. construct the federated problem, the algorithm and a selector,
///   4. run the simulation and inspect the history.
///
/// Run: ./quickstart [rounds]

#include <cstdio>
#include <cstdlib>

#include "core/fedadmm.h"
#include "data/partition.h"
#include "data/synthetic.h"
#include "fl/nn_problem.h"
#include "fl/selection.h"
#include "fl/simulation.h"

int main(int argc, char** argv) {
  using namespace fedadmm;
  const int rounds = argc > 1 ? std::atoi(argv[1]) : 30;

  // 1. Data: a 10-class synthetic image task (stands in for MNIST; point
  //    LoadOrSynthesize at a directory with IDX files to use real data).
  const DataSplit split =
      GenerateSynthetic(SyntheticBenchSpec(/*channels=*/1, /*hw=*/12,
                                           /*train_per_class=*/60,
                                           /*test_per_class=*/20,
                                           /*noise_stddev=*/0.8f));
  Rng rng(42);
  const Partition partition =
      PartitionIid(split.train.size(), /*num_clients=*/20, &rng).ValueOrDie();

  // 2. Model: a small CNN from the paper's two-conv family.
  const ModelConfig model = BenchCnnConfig(/*in_channels=*/1, /*hw=*/12);

  // 3. Problem + algorithm + selection (paper defaults: C=0.1 uniform,
  //    rho=0.01, eta=1, variable local epochs for system heterogeneity).
  NnFederatedProblem problem(model, &split.train, &split.test, partition,
                             /*num_workers=*/4);
  FedAdmmOptions options;
  options.local.learning_rate = 0.05f;
  options.local.batch_size = 10;
  options.local.max_epochs = 5;
  options.rho = StepSchedule(0.05);
  FedAdmm algorithm(options);
  UniformFractionSelector selector(problem.num_clients(), /*fraction=*/0.2);

  SimulationConfig config;
  config.max_rounds = rounds;
  config.seed = 7;
  Simulation simulation(&problem, &algorithm, &selector, config);
  simulation.set_observer([](const RoundRecord& r) {
    std::printf("round %3d  acc %.3f  train-loss %.4f  up %lld B\n", r.round,
                r.test_accuracy, r.train_loss,
                static_cast<long long>(r.upload_bytes));
  });

  // 4. Run and summarize.
  const History history = std::move(simulation.Run()).ValueOrDie();
  std::printf("\nbest accuracy: %.3f  (%d rounds, %lld bytes uploaded)\n",
              history.BestAccuracy(), history.size(),
              static_cast<long long>(history.TotalUploadBytes()));
  const Status st = history.WriteCsv("quickstart_history.csv");
  if (st.ok()) std::printf("history written to quickstart_history.csv\n");
  return 0;
}
