/// \file real_data_runner.cpp
/// \brief Trains the paper's exact CNN 1 on real MNIST/FMNIST IDX files if
/// a directory is given (or CIFAR-10 binaries with --cifar), falling back
/// to a synthetic stand-in otherwise. This is the entry point for anyone
/// who wants to reproduce the paper's Table III numbers on real data.
///
/// Run: ./real_data_runner [--cifar] [data_dir] [clients] [rounds]
///
/// WARNING: the paper-scale CNNs (1.6M parameters) are slow on CPU; with
/// the synthetic fallback this binary automatically shrinks the model so
/// the demo completes in seconds.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "core/fedadmm.h"
#include "data/loaders.h"
#include "data/partition.h"
#include "fl/nn_problem.h"
#include "fl/selection.h"
#include "fl/simulation.h"
#include "util/logging.h"

int main(int argc, char** argv) {
  using namespace fedadmm;
  bool cifar = false;
  std::string data_dir;
  int clients = 20;
  int rounds = 20;
  int arg = 1;
  if (arg < argc && std::strcmp(argv[arg], "--cifar") == 0) {
    cifar = true;
    ++arg;
  }
  if (arg < argc) data_dir = argv[arg++];
  if (arg < argc) clients = std::atoi(argv[arg++]);
  if (arg < argc) rounds = std::atoi(argv[arg++]);

  // Load real data or synthesize a small stand-in.
  const SyntheticSpec fallback =
      SyntheticBenchSpec(cifar ? 3 : 1, 12, /*train_per_class=*/6 * clients,
                         /*test_per_class=*/20, 0.8f);
  const DataSplit split = LoadOrSynthesize(data_dir, cifar, fallback);
  const bool real = split.train.sample_shape().dim(1) >= 28;

  // Real data -> paper model (Table II); synthetic fallback -> bench model.
  ModelConfig model;
  if (real) {
    model = cifar ? PaperCnn2Config() : PaperCnn1Config();
  } else {
    model = BenchCnnConfig(cifar ? 3 : 1, 12);
  }
  std::printf("dataset: %d train / %d test, shape %s -> model %s\n",
              split.train.size(), split.test.size(),
              split.train.sample_shape().ToString().c_str(),
              model.ToString().c_str());

  Rng rng(41);
  const Partition partition =
      PartitionShards(split.train.labels(), clients, 2, &rng).ValueOrDie();

  NnFederatedProblem problem(model, &split.train, &split.test, partition, 4);
  FedAdmmOptions options;
  options.local.learning_rate = real ? 0.1f : 0.05f;
  options.local.batch_size = real ? 50 : 10;
  options.local.max_epochs = 5;
  options.local.variable_epochs = true;
  options.rho = StepSchedule(real ? 0.01 : 0.05);  // paper's fixed rho
  FedAdmm algorithm(options);
  UniformFractionSelector selector(clients, 0.1);

  SimulationConfig config;
  config.max_rounds = rounds;
  config.seed = 43;
  config.log_rounds = false;
  Simulation sim(&problem, &algorithm, &selector, config);
  sim.set_observer([](const RoundRecord& r) {
    std::printf("round %3d  acc %.3f  loss %.4f  (%.2fs)\n", r.round,
                r.test_accuracy, r.train_loss, r.wall_seconds);
  });
  const History history = std::move(sim.Run()).ValueOrDie();
  std::printf("\nbest accuracy: %.3f\n", history.BestAccuracy());
  return 0;
}
