/// \file imbalanced_volumes.cpp
/// \brief The paper's Table VI / Fig. 10 setting at example scale: clients
/// hold drastically different data volumes (group-indexed shard counts),
/// and FedADMM trains through the imbalance.
///
/// Run: ./imbalanced_volumes [rounds]

#include <cstdio>
#include <cstdlib>

#include "core/fedadmm.h"
#include "data/partition.h"
#include "data/synthetic.h"
#include "fl/nn_problem.h"
#include "fl/selection.h"
#include "fl/simulation.h"

int main(int argc, char** argv) {
  using namespace fedadmm;
  const int rounds = argc > 1 ? std::atoi(argv[1]) : 30;
  const int clients = 40;  // 20 groups; group g holds g shards per member

  const DataSplit split = GenerateSynthetic(
      SyntheticBenchSpec(1, 12, /*train_per_class=*/100, 20, 0.8f));
  Rng rng(29);
  const Partition partition =
      PartitionImbalancedGroups(split.train.labels(), clients,
                                /*total_shards=*/500, &rng)
          .ValueOrDie();

  const PartitionStats stats =
      ComputePartitionStats(partition, split.train.labels());
  std::printf("imbalanced partition: %s\n", stats.ToString().c_str());
  std::printf("(paper Table VI reports mean 300 / stdev 171 at full scale; "
              "the generator reproduces those exactly under 200 clients and "
              "10,000 shards — see partition tests)\n\n");

  const ModelConfig model = BenchCnnConfig(1, 12);
  NnFederatedProblem problem(model, &split.train, &split.test, partition, 4);

  FedAdmmOptions options;
  options.local.learning_rate = 0.05f;
  options.local.batch_size = 10;
  options.local.max_epochs = 5;
  options.local.variable_epochs = true;
  options.rho = StepSchedule(0.05);
  FedAdmm algorithm(options);
  UniformFractionSelector selector(clients, 0.2);

  SimulationConfig config;
  config.max_rounds = rounds;
  config.seed = 31;
  Simulation sim(&problem, &algorithm, &selector, config);
  sim.set_observer([](const RoundRecord& r) {
    if (r.round % 5 == 0) {
      std::printf("round %3d  acc %.3f  loss %.4f\n", r.round,
                  r.test_accuracy, r.train_loss);
    }
  });
  const History history = std::move(sim.Run()).ValueOrDie();
  std::printf("\nbest accuracy: %.3f\n", history.BestAccuracy());
  return 0;
}
