/// \file system_heterogeneity.cpp
/// \brief System heterogeneity demo on the src/sys engine.
///
/// Earlier versions of this example modeled heterogeneity with a single
/// knob (variable epoch counts). This version drives the full system model:
/// a fleet preset assigns every client a device/network profile, an
/// availability-aware selector keeps unreachable devices out of each round,
/// a straggler policy decides what happens to late updates, and the virtual
/// clock converts rounds into simulated deployment seconds — so the
/// comparison below is *time*-to-accuracy, not just rounds-to-accuracy.
/// FedADMM (variable local work, Section V-A) is compared against FedAvg
/// (fixed epochs) under a deadline that admits partial work.
///
/// Also demonstrates the trace-driven path: the sampled fleet is written to
/// CSV and loaded back via FleetModel::FromTraceCsv.
///
/// Run: ./system_heterogeneity [rounds]

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "core/fedadmm.h"
#include "data/partition.h"
#include "data/synthetic.h"
#include "fl/algorithms/fedavg.h"
#include "fl/history_csv.h"
#include "fl/nn_problem.h"
#include "fl/selection.h"
#include "fl/simulation.h"
#include "sys/system_model.h"

namespace {

using namespace fedadmm;

History Run(NnFederatedProblem* problem, FederatedAlgorithm* algo,
            const SystemModel* model, int rounds) {
  UniformFractionSelector base(problem->num_clients(), 0.5);
  AvailabilityFilterSelector selector(&base, &model->fleet());
  SimulationConfig config;
  config.max_rounds = rounds;
  config.seed = 23;
  Simulation sim(problem, algo, &selector, config);
  sim.set_system_model(model);
  sim.set_observer([&](const RoundRecord& r) {
    std::printf(
        "  round %3d  |S|=%2d  dropped %d  partial %d  t=%7.1fs  acc %.3f\n",
        r.round, r.num_selected, r.num_dropped, r.num_admitted_partial,
        r.sim_seconds, r.test_accuracy);
  });
  return std::move(sim.Run()).ValueOrDie();
}

}  // namespace

int main(int argc, char** argv) {
  const int rounds = argc > 1 ? std::atoi(argv[1]) : 20;
  const int clients = 24;

  const DataSplit split = GenerateSynthetic(
      SyntheticBenchSpec(1, 12, /*train_per_class=*/48, 20, 0.8f));
  Rng rng(17);
  // Pathological non-IID split (2 label shards per client), the paper's
  // hard setting: losing a straggler's update now costs label coverage.
  const Partition partition =
      PartitionShards(split.train.labels(), clients, 2, &rng).ValueOrDie();
  // Wide MLP, the tuned small-scale stand-in for the paper's
  // overparameterized CNNs (see bench/bench_common.h on why narrow CNNs
  // leave the regime where ADMM local subproblems stay easy).
  ModelConfig model_config;
  model_config.arch = ModelConfig::Arch::kMlp;
  model_config.in_channels = 1;
  model_config.height = 12;
  model_config.width = 12;
  model_config.mlp_hidden = 256;
  model_config.classes = 10;
  NnFederatedProblem problem(model_config, &split.train, &split.test,
                             partition, 4);

  // A churny cross-device fleet: wide compute spread, 10-60% availability.
  const FleetModel fleet =
      FleetModel::FromPreset("cross-device-churn", clients, 7).ValueOrDie();

  // Round-trip the fleet through CSV — the same loader ingests real traces.
  const std::string trace_path = "system_heterogeneity_fleet.csv";
  if (fleet.WriteCsv(trace_path).ok()) {
    const auto loaded = FleetModel::FromTraceCsv(trace_path);
    std::printf("fleet written to %s and reloaded: %d clients, e.g. client 0 "
                "runs %.0f steps/s at %.2f availability\n\n",
                trace_path.c_str(), loaded.ValueOrDie().num_clients(),
                loaded.ValueOrDie().profile(0).device.steps_per_second,
                loaded.ValueOrDie().profile(0).device.availability);
  }

  LocalTrainSpec local;
  local.learning_rate = 0.1f;
  local.batch_size = 5;
  local.max_epochs = 10;

  // A deadline only ~35% of the fleet can meet with *full* local work:
  // everyone else overruns, and the policy's partial admission (plus each
  // algorithm's tolerance for reduced work) decides who keeps learning.
  const int64_t payload =
      problem.dim() * static_cast<int64_t>(sizeof(float));
  std::vector<double> full_work_seconds;
  for (int c = 0; c < clients; ++c) {
    const int samples = static_cast<int>(partition[c].size());
    const int full_steps =  // E * ceil(n_i / B)
        local.max_epochs *
        ((samples + local.batch_size - 1) / local.batch_size);
    full_work_seconds.push_back(
        ComputeClientTiming(fleet.profile(c), full_steps, payload, payload)
            .TotalSeconds());
  }
  std::sort(full_work_seconds.begin(), full_work_seconds.end());
  const double deadline = full_work_seconds[clients * 35 / 100];
  std::printf("round deadline: %.2fs (35th percentile of full-work time)\n",
              deadline);
  SystemModel model(fleet, MakeStragglerPolicy("deadline-admit-partial",
                                               deadline)
                               .ValueOrDie());

  std::printf("== FedADMM (variable local work, E_i ~ U{1..10}) ==\n");
  FedAdmmOptions options;
  options.local = local;
  options.local.variable_epochs = true;  // stragglers may do just 1 epoch
  options.rho = StepSchedule(1.0);
  options.eta = StepSchedule(1.0);
  FedAdmm fedadmm_algo(options);
  const History admm = Run(&problem, &fedadmm_algo, &model, rounds);

  std::printf("\n== FedAvg (fixed 10 local epochs) ==\n");
  FedAvg fedavg_algo(local);
  const History avg = Run(&problem, &fedavg_algo, &model, rounds);

  const double target = 0.6;
  std::printf("\n%-10s %15s %18s %10s %10s\n", "algorithm", "rounds-to-0.60",
              "sim-sec-to-0.60", "dropped", "best-acc");
  const std::pair<const char*, const History*> table[] = {{"FedADMM", &admm},
                                                          {"FedAvg", &avg}};
  for (const auto& [name, h] : table) {
    const int r = h->RoundsToAccuracy(target);
    const double t = h->SimSecondsToAccuracy(target);
    const std::string rounds_str =
        r < 0 ? "not reached" : std::to_string(r);
    char secs_str[32];
    if (t < 0.0) {
      std::snprintf(secs_str, sizeof(secs_str), "%s", "--");
    } else {
      std::snprintf(secs_str, sizeof(secs_str), "%.1fs", t);
    }
    std::printf("%-10s %15s %18s %10d %10.3f\n", name, rounds_str.c_str(),
                secs_str, h->TotalDropped(), h->BestAccuracy());
  }
  std::printf(
      "\nFedADMM's variable-epoch tolerance turns deadline overruns into\n"
      "partial updates; FedAvg's late full-epoch updates shrink toward the\n"
      "deadline fraction. Upload per admitted client is the model size for\n"
      "both (SCAFFOLD would pay double).\n");

  // --- Execution modes: the same fleet without the lockstep barrier. ----
  // Sync waits for the slowest client of every wave; buffered aggregates
  // every K arrivals; async aggregates each arrival the moment it lands.
  // Budgets are normalized to the same total client-update count, and the
  // per-round trajectories go to one CSV through the shared
  // fl/history_csv writer (context column: mode).
  std::printf("\n== Execution modes (wait-for-all admission, FedADMM) ==\n");
  const SystemModel lenient(
      FleetModel::FromPreset("cross-device-churn", clients, 7).ValueOrDie(),
      MakeStragglerPolicy("wait-for-all", -1.0).ValueOrDie());
  const int wave = clients / 2;         // the selector draws C = 0.5
  const int buffer_k = wave / 2;
  HistoryCsvWriter modes_csv;
  const std::string modes_path = "system_heterogeneity_modes.csv";
  const bool csv_ok = modes_csv.Open(modes_path, {"mode"}).ok();
  std::printf("%-10s %10s %18s %12s\n", "mode", "records",
              "sim-sec-to-0.60", "best-acc");
  for (const ExecutionMode mode :
       {ExecutionMode::kSync, ExecutionMode::kBuffered,
        ExecutionMode::kAsync}) {
    FedAdmmOptions mode_options = options;
    mode_options.eta_active_fraction = true;  // η = |S_t|/m — see fedadmm.h
    FedAdmm algo(mode_options);
    UniformFractionSelector selector(clients, 0.5);
    SimulationConfig config;
    config.seed = 23;
    config.mode = mode;
    config.buffer_size = buffer_k;
    config.max_rounds = mode == ExecutionMode::kSync ? rounds
                        : mode == ExecutionMode::kBuffered
                            ? rounds * ((wave + buffer_k - 1) / buffer_k)
                            : rounds * wave;
    config.eval_every = mode == ExecutionMode::kSync ? 1
                        : mode == ExecutionMode::kBuffered
                            ? (wave + buffer_k - 1) / buffer_k
                            : wave;
    Simulation sim(&problem, &algo, &selector, config);
    sim.set_system_model(&lenient);
    const History h = std::move(sim.Run()).ValueOrDie();
    if (csv_ok) {
      (void)modes_csv.AppendHistory({ExecutionModeName(mode)}, h);
    }
    const double t = h.SimSecondsToAccuracy(0.6);
    char secs[32];
    if (t < 0.0) {
      std::snprintf(secs, sizeof(secs), "%s", "--");
    } else {
      std::snprintf(secs, sizeof(secs), "%.1fs", t);
    }
    std::printf("%-10s %10d %18s %12.3f\n",
                ExecutionModeName(mode).c_str(), h.size(), secs,
                h.BestAccuracy());
  }
  if (csv_ok && modes_csv.Close().ok()) {
    std::printf("per-round mode trajectories written to %s\n",
                modes_path.c_str());
  }
  std::printf(
      "\nThe event-driven modes keep the virtual clock running on arrivals\n"
      "instead of wave barriers: fast devices contribute many updates while\n"
      "a straggler finishes one, which is where the sim-seconds-to-target\n"
      "gap comes from.\n");
  return 0;
}
