/// \file system_heterogeneity.cpp
/// \brief System heterogeneity demo: clients perform variable amounts of
/// local work (E_i ~ U{1..E}, Section V-A of the paper), including extreme
/// stragglers, and FedADMM keeps training while byte accounting shows the
/// identical per-round communication footprint of FedAvg.
///
/// Also demonstrates the Bernoulli activation scheme of Remark 2: clients
/// participate with heterogeneous probabilities instead of uniform
/// sampling.
///
/// Run: ./system_heterogeneity [rounds]

#include <cstdio>
#include <cstdlib>

#include "core/fedadmm.h"
#include "data/partition.h"
#include "data/synthetic.h"
#include "fl/nn_problem.h"
#include "fl/selection.h"
#include "fl/simulation.h"

int main(int argc, char** argv) {
  using namespace fedadmm;
  const int rounds = argc > 1 ? std::atoi(argv[1]) : 30;
  const int clients = 24;

  const DataSplit split = GenerateSynthetic(
      SyntheticBenchSpec(1, 12, /*train_per_class=*/48, 20, 0.8f));
  Rng rng(17);
  const Partition partition =
      PartitionIid(split.train.size(), clients, &rng).ValueOrDie();
  const ModelConfig model = BenchCnnConfig(1, 12);

  // Heterogeneous participation: device i is available with probability
  // between 0.05 (battery-constrained phone) and 0.5 (plugged-in desktop).
  std::vector<double> availability;
  for (int i = 0; i < clients; ++i) {
    availability.push_back(0.05 + 0.45 * i / (clients - 1));
  }

  NnFederatedProblem problem(model, &split.train, &split.test, partition, 4);
  FedAdmmOptions options;
  options.local.learning_rate = 0.05f;
  options.local.batch_size = 10;
  options.local.max_epochs = 8;      // fast devices do up to 8 epochs...
  options.local.variable_epochs = true;  // ...stragglers may do just 1
  options.rho = StepSchedule(0.05);
  FedAdmm algorithm(options);
  BernoulliSelector selector(availability);

  SimulationConfig config;
  config.max_rounds = rounds;
  config.seed = 23;
  Simulation sim(&problem, &algorithm, &selector, config);

  long long total_epochs = 0;
  int total_updates = 0;
  sim.set_observer([&](const RoundRecord& r) {
    std::printf("round %3d  |S|=%2d  acc %.3f  loss %.4f\n", r.round,
                r.num_selected, r.test_accuracy, r.train_loss);
    total_updates += r.num_selected;
  });
  const History history = std::move(sim.Run()).ValueOrDie();
  (void)total_epochs;

  std::printf(
      "\nbest accuracy %.3f with %d client updates across %d rounds\n",
      history.BestAccuracy(), total_updates, history.size());
  std::printf(
      "upload per participating client: %lld bytes (= model size; identical "
      "to FedAvg/FedProx, half of SCAFFOLD)\n",
      static_cast<long long>(problem.dim() * sizeof(float)));
  return 0;
}
