/// \file communication_efficiency.cpp
/// \brief Walkthrough of the src/comm update-compression subsystem.
///
/// Cross-device FL lives and dies by the uplink: a 0.25 MB/s cellular
/// client spends seconds shipping a full-precision model delta that
/// compresses 4-30x with little accuracy cost. This example
///   1. builds codecs from spec strings (MakeUpdateCodec),
///   2. shows what each does to a single vector — wire bytes, error bound,
///      reconstruction,
///   3. demonstrates the error-feedback wrapper recovering what a 10%
///      sparsifier drops, and
///   4. runs FedADMM on the `cellular` fleet with identity / q8 / ef:topk10
///      uplinks, printing time-to-accuracy and wire traffic from the same
///      virtual clock the benches use.
///
/// Run: ./communication_efficiency [rounds]

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "comm/codec.h"
#include "comm/error_feedback.h"
#include "comm/topk.h"
#include "core/fedadmm.h"
#include "data/partition.h"
#include "data/synthetic.h"
#include "fl/nn_problem.h"
#include "fl/selection.h"
#include "fl/simulation.h"
#include "sys/system_model.h"

namespace {

using namespace fedadmm;

double MaxAbsError(const std::vector<float>& a, const std::vector<float>& b) {
  double max_err = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    max_err = std::max(max_err, std::fabs(static_cast<double>(a[i]) -
                                          static_cast<double>(b[i])));
  }
  return max_err;
}

}  // namespace

int main(int argc, char** argv) {
  const int rounds = argc > 1 ? std::atoi(argv[1]) : 15;

  // --- 1+2: one vector through every example codec. -----------------------
  std::printf("== Codecs on a 1000-dim update (max|v| = 1) ==\n");
  Rng rng(5);
  std::vector<float> v(1000);
  for (float& x : v) x = static_cast<float>(rng.Uniform(-1.0, 1.0));

  std::printf("%-10s %10s %8s %12s\n", "codec", "wire B", "vs fp32",
              "max |err|");
  for (const std::string& spec : UpdateCodecExampleSpecs()) {
    auto codec = MakeUpdateCodec(spec).ValueOrDie();
    Rng stream(7);  // stochastic codecs draw from a caller-owned stream
    const Payload payload = codec->Encode(/*stream=*/0, v, &stream);
    const std::vector<float> decoded = codec->Decode(payload);
    std::printf("%-10s %10lld %7.1fx %12.2e\n", spec.c_str(),
                static_cast<long long>(payload.WireBytes()),
                static_cast<double>(v.size() * 4) /
                    static_cast<double>(payload.WireBytes()),
                MaxAbsError(v, decoded));
  }

  // --- 3: error feedback makes a lossy codec lossless in the aggregate. ---
  std::printf("\n== Error feedback: 30 rounds of top-10%% on a constant "
              "vector ==\n");
  TopKCodec plain(0.1);
  ErrorFeedbackCodec ef(std::make_unique<TopKCodec>(0.1));
  std::vector<double> sum_plain(v.size(), 0.0), sum_ef(v.size(), 0.0);
  for (int t = 0; t < 30; ++t) {
    const std::vector<float> dp = plain.Decode(plain.Encode(0, v, nullptr));
    const std::vector<float> de = ef.Decode(ef.Encode(0, v, nullptr));
    for (size_t i = 0; i < v.size(); ++i) {
      sum_plain[i] += dp[i];
      sum_ef[i] += de[i];
    }
  }
  double err_plain = 0.0, err_ef = 0.0;
  for (size_t i = 0; i < v.size(); ++i) {
    const double target = 30.0 * v[i];
    err_plain += (target - sum_plain[i]) * (target - sum_plain[i]);
    err_ef += (target - sum_ef[i]) * (target - sum_ef[i]);
  }
  std::printf("  aggregate L2 error: plain top-k %.1f   with EF %.3f\n",
              std::sqrt(err_plain), std::sqrt(err_ef));
  std::printf("  (plain drops the same 90%% forever; EF's residual "
              "retransmits it)\n");

  // --- 4: codecs on the virtual clock, cellular fleet. --------------------
  std::printf("\n== FedADMM on the 'cellular' fleet (%d rounds) ==\n",
              rounds);
  const int clients = 24;
  const DataSplit split = GenerateSynthetic(
      SyntheticBenchSpec(1, 12, /*train_per_class=*/48, 20, 0.8f));
  Rng part_rng(17);
  const Partition partition =
      PartitionShards(split.train.labels(), clients, 2, &part_rng)
          .ValueOrDie();
  ModelConfig model_config;
  model_config.arch = ModelConfig::Arch::kMlp;
  model_config.in_channels = 1;
  model_config.height = 12;
  model_config.width = 12;
  model_config.mlp_hidden = 256;
  model_config.classes = 10;
  NnFederatedProblem problem(model_config, &split.train, &split.test,
                             partition, /*num_workers=*/4);

  const FleetModel fleet =
      FleetModel::FromPreset("cellular", clients, /*seed=*/3).ValueOrDie();
  const SystemModel model(fleet, std::make_unique<WaitForAllPolicy>());

  std::printf("%-10s %8s %9s %9s %8s\n", "uplink", "finalacc", "sim-sec",
              "wire MB", "raw MB");
  for (const std::string& spec : {std::string("identity"), std::string("q8"),
                                  std::string("ef:topk10")}) {
    auto codec = MakeUpdateCodec(spec).ValueOrDie();
    FedAdmmOptions options;
    options.local.learning_rate = 0.1f;
    options.local.batch_size = 5;
    options.local.max_epochs = 10;
    options.local.variable_epochs = true;
    options.rho = StepSchedule(1.0f);
    FedAdmm algo(options);
    UniformFractionSelector base(clients, 0.5);
    AvailabilityFilterSelector selector(&base, &model.fleet());
    SimulationConfig config;
    config.max_rounds = rounds;
    config.seed = 23;
    Simulation sim(&problem, &algo, &selector, config);
    sim.set_system_model(&model);
    sim.set_uplink_codec(codec.get());
    const History h = std::move(sim.Run()).ValueOrDie();
    std::printf("%-10s %8.3f %9.1f %9.2f %8.2f\n", spec.c_str(),
                h.FinalAccuracy(), h.TotalSimSeconds(),
                static_cast<double>(h.TotalUploadBytes()) / 1.0e6,
                static_cast<double>(h.TotalUploadBytesRaw()) / 1.0e6);
  }
  std::printf("\nSame trajectory quality, a fraction of the uplink: that is "
              "the codec subsystem.\n");
  return 0;
}
