/// \file bench_state_scale.cc
/// \brief 100k-client fleet memory scaling of the client-state store.
///
/// FedADMM's per-client (w_i, y_i) state is O(m·d) when stored eagerly —
/// at 100 000 clients the server pays full-fleet memory from round 0 even
/// though a 1%-participation round only ever touches 1 000 of them. This
/// bench runs FedADMM on a cross-device-churn fleet (sys preset; device
/// availability filtered per round) at 1% participation over every
/// configured state-store backend and reports the resident-state curve:
///
///   * `dense`          — m·d·2·4 bytes from round 0 (the baseline);
///   * `lazy`           — touched-clients × 2d × 4 bytes, growing with the
///                        union of selected clients (< 5% of dense at this
///                        participation within the round budget);
///   * `quantized:<b>`  — cold clients at ~b/32 of fp32 prices plus the
///                        in-flight hot set.
///
/// `lazy` and `quantized:32` replay bitwise identically to `dense` (the
/// store-equivalence property), so the accuracy column doubles as a
/// cross-backend checksum: any divergence is a bug, not noise.
///
/// The local objective is a streaming mean-field quadratic
/// f_i(w) = ½‖w − t_i‖² whose per-client target t_i is re-derived from a
/// forked RNG on every access — the *problem* holds no per-client state,
/// so the state store is the only O(m) memory in the run and the numbers
/// below isolate it.
///
/// Output: a summary table on stdout and a deterministic per-round CSV
/// (FEDADMM_BENCH_CSV, default "bench_state_scale.csv") with a `store`
/// context column ahead of the canonical fl/history_csv round columns
/// (wall_seconds forced to 0) — two runs with identical knobs produce
/// byte-identical files.
///
/// Knobs: FEDADMM_BENCH_CLIENTS (default 100000), FEDADMM_BENCH_STATE_DIM
/// (default 128), FEDADMM_BENCH_STORES (default
/// "dense,lazy,quantized:8,quantized:32"), FEDADMM_BENCH_ROUNDS,
/// FEDADMM_BENCH_SCALE, FEDADMM_BENCH_CSV.

#include <cinttypes>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "core/fedadmm.h"
#include "fl/history_csv.h"
#include "fl/selection.h"
#include "fl/simulation.h"
#include "sys/system_model.h"
#include "tensor/vec.h"

namespace fedadmm::bench {
namespace {

/// ½‖w − t_i‖² with t_i ~ N(0, spread²)^d forked per client: gradients and
/// targets are recomputed on demand, so the problem itself is O(d) memory
/// at any fleet size.
class MeanFieldProblem : public FederatedProblem {
 public:
  MeanFieldProblem(int num_clients, int64_t dim, uint64_t seed)
      : num_clients_(num_clients), dim_(dim), master_(seed) {
    // Closed-form optimum of the global objective: t̄ (streamed once).
    mean_target_.assign(static_cast<size_t>(dim), 0.0);
    std::vector<float> target(static_cast<size_t>(dim));
    for (int c = 0; c < num_clients; ++c) {
      FillTarget(c, target);
      for (size_t k = 0; k < target.size(); ++k) {
        mean_target_[k] += target[k];
      }
    }
    for (double& v : mean_target_) v /= num_clients;
  }

  int num_clients() const override { return num_clients_; }
  int64_t dim() const override { return dim_; }
  int num_workers() const override { return 1 << 16; }  // stateless workers

  std::unique_ptr<LocalProblem> MakeLocalProblem(int client,
                                                 int worker) override;

  EvalResult Evaluate(std::span<const float> theta, int worker) override {
    (void)worker;
    double dist_sq = 0.0;
    for (size_t k = 0; k < theta.size(); ++k) {
      const double d = static_cast<double>(theta[k]) - mean_target_[k];
      dist_sq += d * d;
    }
    const double dist = std::sqrt(dist_sq);
    EvalResult result;
    result.accuracy = 1.0 / (1.0 + dist);
    result.loss = 0.5 * dist_sq;
    return result;
  }

  std::vector<float> InitialParameters(Rng* rng) override {
    std::vector<float> theta(static_cast<size_t>(dim_));
    for (auto& v : theta) v = static_cast<float>(rng->Normal(0.0, 1.0));
    return theta;
  }

  /// Re-derives client `c`'s target into `out` (deterministic, O(d)).
  void FillTarget(int client, std::span<float> out) const {
    Rng rng = master_.Fork(0x7A46E7, static_cast<uint64_t>(client));
    for (auto& v : out) v = static_cast<float>(rng.Normal(0.0, kSpread));
  }

 private:
  static constexpr double kSpread = 1.5;

  int num_clients_;
  int64_t dim_;
  Rng master_;
  std::vector<double> mean_target_;
};

class MeanFieldLocalProblem : public LocalProblem {
 public:
  MeanFieldLocalProblem(const MeanFieldProblem* problem, int client)
      : dim_(problem->dim()), target_(static_cast<size_t>(problem->dim())) {
    problem->FillTarget(client, target_);
  }

  int64_t dim() const override { return dim_; }
  int num_samples() const override { return kPseudoSamples; }

  double BatchLossGradient(std::span<const float> w,
                           const std::vector<int>& batch,
                           std::span<float> grad) override {
    (void)batch;
    return FullLossGradient(w, grad);
  }

  std::vector<std::vector<int>> EpochBatches(int batch_size,
                                             Rng* rng) override {
    (void)rng;
    int steps = 1;
    if (batch_size > 0 && batch_size < kPseudoSamples) {
      steps = (kPseudoSamples + batch_size - 1) / batch_size;
    }
    std::vector<std::vector<int>> batches(static_cast<size_t>(steps));
    for (auto& b : batches) b = {0};  // gradient is exact
    return batches;
  }

  double FullLossGradient(std::span<const float> w,
                          std::span<float> grad) override {
    double loss = 0.0;
    for (size_t k = 0; k < target_.size(); ++k) {
      const float diff = w[k] - target_[k];
      grad[k] = diff;
      loss += 0.5 * static_cast<double>(diff) * diff;
    }
    return loss;
  }

 private:
  static constexpr int kPseudoSamples = 4;

  int64_t dim_;
  std::vector<float> target_;
};

std::unique_ptr<LocalProblem> MeanFieldProblem::MakeLocalProblem(
    int client, int worker) {
  (void)worker;
  return std::make_unique<MeanFieldLocalProblem>(this, client);
}

std::string FormatMiB(int64_t bytes) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2f",
                static_cast<double>(bytes) / (1024.0 * 1024.0));
  return buf;
}

}  // namespace
}  // namespace fedadmm::bench

int main() {
  using namespace fedadmm;
  using namespace fedadmm::bench;

  const int clients =
      static_cast<int>(GetEnvInt("FEDADMM_BENCH_CLIENTS", 100000));
  const int64_t dim = GetEnvInt("FEDADMM_BENCH_STATE_DIM", 128);
  const int rounds = RoundBudget(4, 8);
  const double participation = 0.01;
  const std::vector<std::string> stores = ParseCodecList(GetEnvString(
      "FEDADMM_BENCH_STORES", "dense,lazy,quantized:8,quantized:32"));

  PrintHeader("State-store scaling: " + std::to_string(clients) +
              "-client cross-device-churn fleet, " +
              std::to_string(static_cast<int>(participation * 100)) +
              "% participation, d=" + std::to_string(dim));

  HistoryCsvWriter csv;
  const std::string csv_path =
      GetEnvString("FEDADMM_BENCH_CSV", "bench_state_scale.csv");
  if (!csv.Open(csv_path, {"store"}, /*deterministic_only=*/true).ok()) {
    std::fprintf(stderr, "cannot write %s\n", csv_path.c_str());
    return 1;
  }

  // One shared fleet: availability churn filters selection, the straggler
  // policy times rounds. Identical across backends (seeded).
  MeanFieldProblem problem(clients, dim, /*seed=*/17);
  FleetModel fleet =
      FleetModel::FromPreset("cross-device-churn", clients, 29).ValueOrDie();
  SystemModel model(FleetModel(fleet),
                    MakeStragglerPolicy("wait-for-all", -1.0).ValueOrDie());

  const int64_t dense_bytes = static_cast<int64_t>(clients) * dim * 2 * 4;
  std::printf("dense arena baseline: %s MiB (m·d·2·4)\n",
              FormatMiB(dense_bytes).c_str());
  std::printf("\n%-14s | %10s | %12s | %8s | %10s | %9s\n", "store",
              "rounds", "resident MiB", "% dense", "touched", "final acc");
  std::printf("---------------+------------+--------------+----------+--"
              "----------+----------\n");

  std::vector<double> dense_acc;
  for (const std::string& store : stores) {
    FedAdmmOptions options;
    options.local.learning_rate = 0.3f;
    options.local.batch_size = 0;
    options.local.max_epochs = 2;
    options.local.variable_epochs = true;
    options.rho = StepSchedule(1.0);
    options.eta_active_fraction = true;
    options.state_store = store;
    FedAdmm algo(options);

    UniformFractionSelector base(clients, participation);
    AvailabilityFilterSelector selector(&base, &fleet);

    SimulationConfig config;
    config.max_rounds = rounds;
    config.seed = 7;
    config.num_threads = 8;
    Simulation sim(&problem, &algo, &selector, config);
    sim.set_system_model(&model);
    const History history = std::move(sim.Run()).ValueOrDie();
    if (!csv.AppendHistory({store}, history).ok()) {
      std::fprintf(stderr, "CSV write failed\n");
      return 1;
    }

    const int64_t resident = history.records().back().state_bytes_resident;
    const double pct =
        100.0 * static_cast<double>(resident) / dense_bytes;
    std::printf("%-14s | %10d | %12s | %7.2f%% | %10d | %9.4f\n",
                store.c_str(), history.size(),
                FormatMiB(resident).c_str(), pct,
                algo.state_store().num_touched_clients(),
                history.FinalAccuracy());

    std::vector<double> acc;
    for (const RoundRecord& r : history.records()) {
      acc.push_back(r.test_accuracy);
    }
    if (store == "dense") {
      dense_acc = acc;
    } else if (!dense_acc.empty() &&
               (store == "lazy" || store == "quantized:32")) {
      // Bitwise backends: the accuracy trajectory is a checksum (only
      // checkable when a dense run preceded in FEDADMM_BENCH_STORES).
      if (acc != dense_acc) {
        std::fprintf(stderr,
                     "FAIL: %s trajectory diverged from dense "
                     "(store-equivalence violation)\n",
                     store.c_str());
        return 1;
      }
    }
  }

  if (!csv.Close().ok()) {
    std::fprintf(stderr, "CSV close failed\n");
    return 1;
  }
  std::printf(
      "\nlazy / quantized:32 trajectories verified bit-identical to dense."
      "\nResident state under partial participation tracks the touched"
      "\npopulation: untouched clients read the shared (θ⁰, 0) slot"
      "\ninitializers at zero bytes. CSV: %s\n",
      csv_path.c_str());
  PrintFootnote();
  return 0;
}
