/// \file bench_state_scale.cc
/// \brief 100k-client fleet memory scaling of the client-state store.
///
/// FedADMM's per-client (w_i, y_i) state is O(m·d) when stored eagerly —
/// at 100 000 clients the server pays full-fleet memory from round 0 even
/// though a 1%-participation round only ever touches 1 000 of them. This
/// bench runs FedADMM on a cross-device-churn fleet (sys preset; device
/// availability filtered per round) at 1% participation over every
/// configured state-store backend and reports the resident-state curve:
///
///   * `dense`          — m·d·2·4 bytes from round 0 (the baseline);
///   * `lazy`           — touched-clients × 2d × 4 bytes, growing with the
///                        union of selected clients (< 5% of dense at this
///                        participation within the round budget);
///   * `quantized:<b>`  — cold clients at ~b/32 of fp32 prices plus the
///                        in-flight hot set;
///   * `tiered:auto`    — the out-of-core backend with a pool auto-sized
///                        from the measured schedule: large enough to hold
///                        next round's prefetched cohort (4 × max cohort
///                        frames) yet under 1/12 of the touched slab
///                        population, so resident bytes are pinned to the
///                        pool while the touched state dwarfs it. An
///                        explicit `tiered:<cap>:<path>` spec passes
///                        through untouched.
///
/// `lazy`, `quantized:32`, and `tiered:*` replay bitwise identically to
/// `dense` (the store-equivalence property), so the accuracy column
/// doubles as a cross-backend checksum: any divergence is a bug, not
/// noise. The tiered row additionally asserts the out-of-core contract:
/// resident bytes equal `frames × frame_bytes` exactly, the pool stays
/// under 10% of touched-state bytes, and — when the 10% budget covers the
/// prefetched cohort ("covered" sizing) — the hot-path pool hit rate
/// exceeds 90%, because the engine prefetches next round's cold slabs
/// during aggregate/finalize and faults stay off the wave.
///
/// The local objective is a streaming mean-field quadratic
/// f_i(w) = ½‖w − t_i‖² whose per-client target t_i is re-derived from a
/// forked RNG on every access — the *problem* holds no per-client state,
/// so the state store is the only O(m) memory in the run and the numbers
/// below isolate it.
///
/// Output: a summary table on stdout, a deterministic per-round CSV
/// (FEDADMM_BENCH_CSV, default "bench_state_scale.csv") with a `store`
/// context column ahead of the canonical fl/history_csv round columns
/// (wall_seconds forced to 0) — two runs with identical knobs produce
/// byte-identical files — and the persisted perf rail
/// (FEDADMM_BENCH_JSON, default "BENCH_state_scale.json"): per-store rows
/// with exact-gated deterministic metrics (`*_bytes`, `*_count`) plus
/// informational pool/prefetch rates (hit/miss ordering depends on how
/// the prefetch tasks race the next wave, so those never gate).
///
/// Knobs: FEDADMM_BENCH_CLIENTS (default 100000), FEDADMM_BENCH_STATE_DIM
/// (default 128), FEDADMM_BENCH_STORES (default
/// "dense,lazy,quantized:8,quantized:32,tiered:auto"),
/// FEDADMM_BENCH_ROUNDS (default 32; the touched population must dwarf
/// the pool for the out-of-core story), FEDADMM_BENCH_SLAB (slab-log
/// path for tiered:auto), FEDADMM_BENCH_SCALE, FEDADMM_BENCH_CSV,
/// FEDADMM_BENCH_JSON.

#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "bench/mean_field_problem.h"
#include "core/fedadmm.h"
#include "fl/history_csv.h"
#include "fl/selection.h"
#include "fl/simulation.h"
#include "obs/bench_recorder.h"
#include "state/tiered_store.h"
#include "sys/system_model.h"
#include "tensor/vec.h"

namespace fedadmm::bench {
namespace {

std::string FormatMiB(int64_t bytes) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2f",
                static_cast<double>(bytes) / (1024.0 * 1024.0));
  return buf;
}

}  // namespace
}  // namespace fedadmm::bench

int main() {
  using namespace fedadmm;
  using namespace fedadmm::bench;
  using Clock = std::chrono::steady_clock;

  const int clients =
      static_cast<int>(GetEnvInt("FEDADMM_BENCH_CLIENTS", 100000));
  const int64_t dim = GetEnvInt("FEDADMM_BENCH_STATE_DIM", 128);
  // The out-of-core story needs the touched population to dwarf the pool:
  // at uniform 1% participation the touched union grows ~cohort/round, so
  // 32 rounds put a cohort-covering pool safely under 10% of it.
  const int rounds = RoundBudget(32, 48);
  const double participation = 0.01;
  const std::vector<std::string> store_tokens = ParseCodecList(GetEnvString(
      "FEDADMM_BENCH_STORES",
      "dense,lazy,quantized:8,quantized:32,tiered:auto"));
  const std::string slab_path =
      GetEnvString("FEDADMM_BENCH_SLAB", "/tmp/fedadmm_bench_state.slab");

  PrintHeader("State-store scaling: " + std::to_string(clients) +
              "-client cross-device-churn fleet, " +
              std::to_string(static_cast<int>(participation * 100)) +
              "% participation, d=" + std::to_string(dim));

  HistoryCsvWriter csv;
  const std::string csv_path =
      GetEnvString("FEDADMM_BENCH_CSV", "bench_state_scale.csv");
  if (!csv.Open(csv_path, {"store"}, /*deterministic_only=*/true).ok()) {
    std::fprintf(stderr, "cannot write %s\n", csv_path.c_str());
    return 1;
  }

  obs::BenchRecorder recorder("state_scale");
  recorder.AddContext("clients", static_cast<int64_t>(clients));
  recorder.AddContext("dim", dim);
  recorder.AddContext("rounds", static_cast<int64_t>(rounds));
  recorder.AddContext("participation_pct",
                      static_cast<int64_t>(participation * 100));
  {
    std::string joined;
    for (const std::string& token : store_tokens) {
      if (!joined.empty()) joined += ",";
      joined += token;
    }
    recorder.AddContext("stores", joined);
  }

  // One shared fleet: availability churn filters selection, the straggler
  // policy times rounds. Identical across backends (seeded).
  MeanFieldProblem problem(clients, dim, /*seed=*/17);
  FleetModel fleet =
      FleetModel::FromPreset("cross-device-churn", clients, 29).ValueOrDie();
  SystemModel model(FleetModel(fleet),
                    MakeStragglerPolicy("wait-for-all", -1.0).ValueOrDie());

  const int64_t dense_bytes = static_cast<int64_t>(clients) * dim * 2 * 4;
  std::printf("dense arena baseline: %s MiB (m·d·2·4)\n",
              FormatMiB(dense_bytes).c_str());
  std::printf("\n%-14s | %10s | %12s | %8s | %10s | %9s\n", "store",
              "rounds", "resident MiB", "% dense", "touched", "final acc");
  std::printf("---------------+------------+--------------+----------+--"
              "----------+----------\n");

  std::vector<double> dense_acc;
  // Schedule stats from the first completed run (the selection schedule is
  // seeded and identical across backends), used to auto-size tiered:auto.
  int64_t seen_max_cohort = 0;
  int64_t seen_touched = 0;
  for (const std::string& token : store_tokens) {
    std::string store = token;
    bool auto_sized = false;  // sized from a *measured* schedule
    bool covered = false;     // 10% budget covers the prefetched cohort
    if (token == "tiered:auto") {
      const int64_t cohort =
          seen_max_cohort > 0
              ? seen_max_cohort
              : std::max<int64_t>(
                    1, static_cast<int64_t>(clients * participation));
      const int64_t touched_slabs =
          2 * (seen_touched > 0 ? seen_touched : cohort * rounds);
      // Covering size: next round's prefetched cohort (2 slabs/client)
      // plus a full round of create churn must survive the clock sweep.
      const int64_t covering = 4 * cohort + 16;
      // Hard budget: 1/12 of the touched slab population (~8.3% of
      // touched-state bytes, under the 10% out-of-core contract).
      const int64_t budget = touched_slabs / 12;
      const int64_t frames = std::max<int64_t>(2, std::min(covering, budget));
      auto_sized = seen_touched > 0;
      covered = budget >= covering;
      store = "tiered:" + std::to_string(frames) + "f:" + slab_path;
      std::printf("\ntiered:auto → %s (%s; %" PRId64
                  " max cohort, %" PRId64 " touched clients measured)\n",
                  store.c_str(),
                  covered ? "cohort-covering" : "budget-capped",
                  seen_max_cohort, seen_touched);
    }
    FedAdmmOptions options;
    options.local.learning_rate = 0.3f;
    options.local.batch_size = 0;
    options.local.max_epochs = 2;
    options.local.variable_epochs = true;
    options.rho = StepSchedule(1.0);
    options.eta_active_fraction = true;
    options.state_store = store;
    FedAdmm algo(options);

    UniformFractionSelector base(clients, participation);
    AvailabilityFilterSelector selector(&base, &fleet);

    SimulationConfig config;
    config.max_rounds = rounds;
    config.seed = 7;
    config.num_threads = 8;
    Simulation sim(&problem, &algo, &selector, config);
    sim.set_system_model(&model);
    const auto start = Clock::now();
    const History history = std::move(sim.Run()).ValueOrDie();
    const double wall =
        std::chrono::duration<double>(Clock::now() - start).count();
    if (!csv.AppendHistory({store}, history).ok()) {
      std::fprintf(stderr, "CSV write failed\n");
      return 1;
    }

    const int64_t resident = history.records().back().state_bytes_resident;
    const int64_t touched = algo.state_store().num_touched_clients();
    const double pct =
        100.0 * static_cast<double>(resident) / dense_bytes;
    std::printf("%-14s | %10d | %12s | %7.2f%% | %10" PRId64 " | %9.4f\n",
                token.c_str(), history.size(),
                FormatMiB(resident).c_str(), pct, touched,
                history.FinalAccuracy());

    // dense counts the whole fleet as touched; the union-tracking
    // backends report the real touched population — keep the smallest.
    if (seen_touched == 0 || touched < seen_touched) seen_touched = touched;
    for (const RoundRecord& r : history.records()) {
      seen_max_cohort = std::max<int64_t>(seen_max_cohort, r.num_selected);
    }

    obs::BenchResult* row = recorder.AddResult("store=" + token);
    row->AddMetric("aggregations_count",
                   static_cast<int64_t>(history.size()));
    row->AddMetric("state_resident_bytes", resident);
    row->AddMetric("touched_clients_count", touched);
    row->AddMetric("upload_bytes", history.TotalUploadBytes());
    row->AddMetric("run_wall_seconds", wall);
    row->AddMetric("rounds_per_sec",
                   wall > 0.0 ? history.size() / wall : 0.0);
    row->AddMetric("final_accuracy", history.FinalAccuracy());

    if (const auto* tiered = dynamic_cast<const TieredStateStore*>(
            &algo.state_store())) {
      const int64_t pool_bytes =
          tiered->pool_capacity_frames() * tiered->pool_frame_bytes();
      const int64_t touched_bytes =
          touched * 2 * tiered->pool_frame_bytes();
      const int64_t hits = tiered->pool_hits();
      const int64_t misses = tiered->pool_misses();
      const double hit_rate =
          hits + misses > 0
              ? static_cast<double>(hits) / static_cast<double>(hits + misses)
              : 1.0;
      // Deterministic (gated): pool geometry and the touched population
      // follow from the knobs and the seeded schedule alone.
      row->AddMetric("pool_capacity_bytes", pool_bytes);
      row->AddMetric("touched_state_bytes", touched_bytes);
      // Informational: hit/miss/late ordering depends on how prefetch
      // tasks race the next wave on the executor pool.
      row->AddMetric("pool_hit_rate", hit_rate);
      row->AddMetric("pool_creates_total", tiered->pool_creates());
      row->AddMetric("prefetch_issued_total", tiered->prefetch_issued());
      row->AddMetric("prefetch_late_total", tiered->prefetch_late());
      std::printf("  pool: %" PRId64 " frames × %" PRId64
                  " B = %s MiB (%.2f%% of touched state), hit rate %.4f "
                  "(%" PRId64 " hits / %" PRId64 " faults), %" PRId64
                  " creates, prefetch %" PRId64 " issued / %" PRId64
                  " late, %.1f rounds/s\n",
                  tiered->pool_capacity_frames(), tiered->pool_frame_bytes(),
                  FormatMiB(pool_bytes).c_str(),
                  touched_bytes > 0
                      ? 100.0 * static_cast<double>(pool_bytes) / touched_bytes
                      : 0.0,
                  hit_rate, hits, misses, tiered->pool_creates(),
                  tiered->prefetch_issued(), tiered->prefetch_late(),
                  wall > 0.0 ? history.size() / wall : 0.0);
      if (auto_sized) {
        // The out-of-core contract, checked on the auto-sized axis where
        // the sizing guarantees it is satisfiable.
        if (resident != pool_bytes) {
          std::fprintf(stderr,
                       "FAIL: tiered resident bytes %" PRId64
                       " != frames × frame_bytes %" PRId64 "\n",
                       resident, pool_bytes);
          return 1;
        }
        if (pool_bytes * 10 >= touched_bytes) {
          std::fprintf(stderr,
                       "FAIL: pool %" PRId64 " B is not < 10%% of touched "
                       "state %" PRId64 " B\n",
                       pool_bytes, touched_bytes);
          return 1;
        }
        if (covered && hits + misses > 0 && hit_rate <= 0.9) {
          std::fprintf(stderr,
                       "FAIL: cohort-covering pool hit rate %.4f <= 0.9 "
                       "(prefetch is not keeping faults off the wave)\n",
                       hit_rate);
          return 1;
        }
      }
    }

    std::vector<double> acc;
    for (const RoundRecord& r : history.records()) {
      acc.push_back(r.test_accuracy);
    }
    if (token == "dense") {
      dense_acc = acc;
    } else if (!dense_acc.empty() &&
               (token == "lazy" || token == "quantized:32" ||
                token.rfind("tiered", 0) == 0)) {
      // Bitwise backends: the accuracy trajectory is a checksum (only
      // checkable when a dense run preceded in FEDADMM_BENCH_STORES).
      if (acc != dense_acc) {
        std::fprintf(stderr,
                     "FAIL: %s trajectory diverged from dense "
                     "(store-equivalence violation)\n",
                     token.c_str());
        return 1;
      }
    }
  }

  if (!csv.Close().ok()) {
    std::fprintf(stderr, "CSV close failed\n");
    return 1;
  }
  const std::string json_path =
      GetEnvString("FEDADMM_BENCH_JSON", "BENCH_state_scale.json");
  if (!recorder.WriteFile(json_path).ok()) {
    std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
    return 1;
  }
  std::printf("perf rail written to %s\n", json_path.c_str());
  std::printf(
      "\nlazy / quantized:32 / tiered trajectories verified bit-identical"
      "\nto dense. Resident state under partial participation tracks the"
      "\ntouched population (untouched clients read the shared (θ⁰, 0)"
      "\nslot initializers at zero bytes) — except tiered, whose residency"
      "\nis pinned to the buffer pool while cold slabs live in the log."
      "\nCSV: %s\n",
      csv_path.c_str());
  PrintFootnote();
  return 0;
}
