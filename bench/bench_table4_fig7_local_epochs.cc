/// \file bench_table4_fig7_local_epochs.cc
/// \brief Reproduces Table IV and Fig. 7: the effect of the local epoch
/// budget E on FedADMM. More local work per round = fewer rounds to the
/// target (the strongly convex subproblems are solved more exactly, i.e.
/// smaller attained ε_i in Eq. (6)).
///
/// Paper reference (rounds to target): MNIST IID 27/10/6 and non-IID
/// 56/33/32 for E = 1/5/10; CIFAR-10 IID 24/12/10, non-IID 30/14/11.

#include <cstdio>

#include "bench/bench_common.h"

namespace {

using namespace fedadmm;
using namespace fedadmm::bench;

struct Cell {
  int rounds;
  double final_acc;
  double mean_inexactness;  // mean attained ||∇L_i||² at upload
};

Cell RunWithEpochs(Scenario* scenario, int epochs, int budget, double target,
                   uint64_t seed) {
  FedAdmmOptions options = BenchAdmmOptions(kBenchRho, epochs);
  // Fixed epochs isolate the E effect (Table IV varies E directly).
  options.local.variable_epochs = false;
  FedAdmm algo(options);

  UniformFractionSelector selector(scenario->problem->num_clients(), 0.1);
  SimulationConfig config;
  config.max_rounds = budget;
  config.seed = seed;
  config.num_threads = 8;
  Simulation sim(scenario->problem.get(), &algo, &selector, config);
  // Note: inexactness is reported per message; average it via the observer.
  const History h = std::move(sim.Run()).ValueOrDie();
  Cell cell;
  const int r = h.RoundsToAccuracy(target);
  cell.rounds = r < 0 ? budget + 1 : r;
  cell.final_acc = h.FinalAccuracy();
  cell.mean_inexactness = 0.0;
  return cell;
}

}  // namespace

int main() {
  PrintHeader("Table IV / Fig. 7 — effect of local epoch count E on FedADMM");

  const int budget = RoundBudget(40, 120);
  const std::vector<int> epoch_grid = {1, 5, 10};

  std::printf("%-10s %-8s %-8s %-10s %-10s\n", "task", "split", "E", "rounds",
              "final acc");
  for (TaskKind task : {TaskKind::kMnistLike, TaskKind::kCifarLike}) {
    for (bool iid : {true, false}) {
      Scenario scenario = MakeScenario(task, 100, iid, 6);
      const double target = TaskTarget(task);
      for (int epochs : epoch_grid) {
        const Cell cell =
            RunWithEpochs(&scenario, epochs, budget, target, 61);
        std::printf("%-10s %-8s %-8d %-10s %-10.3f\n", TaskName(task),
                    iid ? "IID" : "nIID", epochs,
                    FormatRounds(cell.rounds > budget ? -1 : cell.rounds,
                                 budget)
                        .c_str(),
                    cell.final_acc);
      }
    }
  }

  std::printf(
      "\npaper shape (Table IV): rounds decrease monotonically as E grows\n"
      "(27->10->6 on MNIST IID), with convergence always maintained at a\n"
      "fixed learning rate (Fig. 7).\n");
  PrintFootnote();
  return 0;
}
