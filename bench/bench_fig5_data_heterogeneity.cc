/// \file bench_fig5_data_heterogeneity.cc
/// \brief Reproduces Fig. 5: adaptability to heterogeneous data. FedADMM
/// runs with ONE fixed configuration across the IID and non-IID settings,
/// while each baseline is allowed to pick its best configuration per
/// setting from a small grid — and FedADMM should remain competitive
/// without any tuning (the paper: it outperforms all tuned baselines).

#include <cstdio>

#include "bench/bench_common.h"

namespace {

using namespace fedadmm;
using namespace fedadmm::bench;

int RoundsFor(Scenario* scenario, FederatedAlgorithm* algo, int budget,
              double target, uint64_t seed) {
  const History h = RunScenario(scenario, algo, 0.1, budget, seed, target);
  const int r = h.RoundsToAccuracy(target);
  return r < 0 ? budget + 1 : r;
}

}  // namespace

int main() {
  PrintHeader(
      "Fig. 5 — adaptability to data heterogeneity (FedADMM untuned vs "
      "baselines tuned per setting)");

  const int budget = RoundBudget(40, 100);
  const int clients = LargeScale() ? 200 : 100;

  for (TaskKind task : {TaskKind::kFmnistLike, TaskKind::kCifarLike}) {
    const double target = TaskTarget(task);
    std::printf("\n%s, m=%d, target %.0f%% (rounds; lower is better)\n",
                TaskName(task), clients, target * 100);
    std::printf("%-10s %-22s %-22s\n", "split", "FedADMM (fixed config)",
                "best tuned baseline");
    for (bool iid : {true, false}) {
      Scenario scenario = MakeScenario(task, clients, iid, 4);

      // FedADMM: one fixed configuration for both settings.
      FedAdmm admm(BenchAdmmOptions());
      const int r_admm = RoundsFor(&scenario, &admm, budget, target, 41);

      // Baselines: grid over learning rate (and rho for FedProx); keep the
      // best result per setting.
      int best_baseline = budget + 1;
      std::string best_name = "none";
      for (float lr : {0.05f, 0.1f, 0.2f}) {
        {
          FedAvg algo(BenchLocalSpec(10, 5, lr));
          const int r = RoundsFor(&scenario, &algo, budget, target, 41);
          if (r < best_baseline) {
            best_baseline = r;
            best_name = "FedAvg(lr=" + std::to_string(lr) + ")";
          }
        }
        for (float rho : {0.01f, 0.1f, 1.0f}) {
          LocalTrainSpec local = BenchLocalSpec(10, 5, lr);
          local.variable_epochs = true;
          FedProx algo(local, rho);
          const int r = RoundsFor(&scenario, &algo, budget, target, 41);
          if (r < best_baseline) {
            best_baseline = r;
            best_name = "FedProx(lr=" + std::to_string(lr) +
                        ",rho=" + std::to_string(rho) + ")";
          }
        }
        {
          Scaffold algo(BenchLocalSpec(10, 5, lr));
          const int r = RoundsFor(&scenario, &algo, budget, target, 41);
          if (r < best_baseline) {
            best_baseline = r;
            best_name = "SCAFFOLD(lr=" + std::to_string(lr) + ")";
          }
        }
      }
      std::printf("%-10s %-22s %s -> %s\n", iid ? "IID" : "non-IID",
                  FormatRounds(r_admm > budget ? -1 : r_admm, budget).c_str(),
                  FormatRounds(best_baseline > budget ? -1 : best_baseline,
                               budget)
                      .c_str(),
                  best_name.c_str());
    }
  }

  std::printf(
      "\npaper shape: FedADMM with a single fixed configuration is\n"
      "competitive with (in the paper: beats) every per-setting tuned\n"
      "baseline in both IID and non-IID regimes.\n");
  PrintFootnote();
  return 0;
}
