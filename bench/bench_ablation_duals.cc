/// \file bench_ablation_duals.cc
/// \brief Ablation of FedADMM's design choices (not a paper table, but the
/// decomposition the paper argues for in Sections III-A/III-B):
///   1. dual variables ON vs frozen at zero (freezing reduces the local
///      problem to FedProx's) — measures what the "signed price vector"
///      contributes;
///   2. tracking server update vs plain averaging semantics (via η mode);
///   3. warm start vs global restart (Fig. 8's knob) on the convex
///      federation where the effect is exactly measurable.
///
/// Runs on the convex quadratic federation: distances to the closed-form
/// optimum are exact, so the ablation is free of evaluation noise.

#include <cstdio>

#include "bench/bench_common.h"
#include "core/optimality.h"
#include "fl/quadratic_problem.h"

namespace {

using namespace fedadmm;
using namespace fedadmm::bench;

QuadraticSpec Spec() {
  QuadraticSpec spec;
  spec.num_clients = 16;
  spec.dim = 16;
  spec.heterogeneity = 2.5;
  spec.seed = 123;
  return spec;
}

struct Outcome {
  double final_distance;
  int rounds_to_01;  // rounds until ||θ − θ*|| <= 0.1
};

Outcome Run(const FedAdmmOptions& options, int rounds, uint64_t seed) {
  QuadraticProblem problem(Spec());
  FedAdmm algo(options);
  UniformFractionSelector selector(problem.num_clients(), 0.25);
  SimulationConfig config;
  config.max_rounds = rounds;
  config.seed = seed;
  config.num_threads = 8;
  Simulation sim(&problem, &algo, &selector, config);

  Outcome out{1e9, -1};
  sim.set_observer([&](const RoundRecord& r) {
    const double dist = problem.DistanceToOptimum(sim.theta());
    if (out.rounds_to_01 < 0 && dist <= 0.1) out.rounds_to_01 = r.round + 1;
    out.final_distance = dist;
  });
  (void)sim.Run();
  return out;
}

FedAdmmOptions Base() {
  FedAdmmOptions options;
  options.local.learning_rate = 0.04f;
  options.local.batch_size = 0;
  options.local.max_epochs = 8;
  options.local.variable_epochs = true;
  options.rho = StepSchedule(2.0);
  options.eta_active_fraction = true;
  return options;
}

}  // namespace

int main() {
  PrintHeader(
      "Ablation — what each FedADMM design choice contributes (convex "
      "federation, ||θ−θ*|| exact)");

  const int rounds = RoundBudget(300, 800);
  std::printf("%-40s %-14s %-16s\n", "variant", "rounds to 0.1",
              "final distance");

  struct Case {
    const char* name;
    FedAdmmOptions options;
  };
  std::vector<Case> cases;
  cases.push_back({"FedADMM (full)", Base()});
  {
    FedAdmmOptions o = Base();
    o.freeze_duals = true;
    cases.push_back({"duals frozen (≈FedProx local problem)", o});
  }
  {
    FedAdmmOptions o = Base();
    o.init = FedAdmmOptions::LocalInit::kGlobalModel;
    cases.push_back({"global-restart init (Fig. 8 II)", o});
  }
  {
    FedAdmmOptions o = Base();
    o.eta_active_fraction = false;
    o.eta = StepSchedule(1.0);
    cases.push_back({"eta = 1 (vs |S|/m)", o});
  }
  {
    FedAdmmOptions o = Base();
    o.local.variable_epochs = false;
    o.local.max_epochs = 1;
    cases.push_back({"E = 1 (minimal local work)", o});
  }

  for (const Case& c : cases) {
    const Outcome out = Run(c.options, rounds, 9);
    std::printf("%-40s %-14s %-16.4f\n", c.name,
                FormatRounds(out.rounds_to_01, rounds).c_str(),
                out.final_distance);
  }

  std::printf(
      "\nreading: freezing the duals leaves a persistent bias (FedProx-like\n"
      "plateau above the optimum); live duals drive the distance toward 0.\n"
      "η=1 trades stability margin for speed; E=1 converges but slowly\n"
      "(Table IV's mechanism).\n");
  PrintFootnote();
  return 0;
}
