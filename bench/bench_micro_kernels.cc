/// \file bench_micro_kernels.cc
/// \brief google-benchmark microbenchmarks of the compute kernels backing
/// the simulator: GEMM, im2col convolution, pooling, softmax, and the flat
/// vector operations on the FL hot path.
///
/// Besides the usual console table, every run tees its results into the
/// obs perf rail (obs/bench_recorder.h): per-iteration real/CPU seconds
/// land in a BENCH_kernels.json document (FEDADMM_BENCH_JSON, default
/// "BENCH_kernels.json") that `tools/bench_diff` gates against the
/// committed baseline at the repo root.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "comm/quantize.h"
#include "core/fedadmm.h"
#include "fl/algorithm.h"
#include "nn/model_zoo.h"
#include "obs/bench_recorder.h"
#include "tensor/simd/simd.h"
#include "tensor/tensor_ops.h"
#include "tensor/vec.h"
#include "util/env.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace fedadmm {
namespace {

std::vector<float> RandomVec(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<float> v(n);
  for (auto& x : v) x = static_cast<float>(rng.Normal(0.0, 1.0));
  return v;
}

/// Pins the kernel table for the duration of one benchmark so the
/// `*Scalar` variants measure the genuine scalar fallback against the
/// otherwise-identical dispatched benchmark. Benchmarks run their hot
/// loops on this thread, so flipping the table here is safe.
struct ScopedForcedScalar {
  ScopedForcedScalar() { simd::ForceIsaForTesting(simd::Isa::kScalar); }
  ~ScopedForcedScalar() { simd::ForceIsaForTesting(std::nullopt); }
};

void BM_MatMul(benchmark::State& state) {
  const int64_t n = state.range(0);
  const auto a = RandomVec(static_cast<size_t>(n * n), 1);
  const auto b = RandomVec(static_cast<size_t>(n * n), 2);
  std::vector<float> c(static_cast<size_t>(n * n));
  for (auto _ : state) {
    ops::MatMul(a.data(), b.data(), c.data(), n, n, n);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK(BM_MatMul)->Arg(32)->Arg(64)->Arg(128)->Arg(256);

void BM_Im2Col(benchmark::State& state) {
  const int64_t hw = state.range(0);
  const int64_t channels = 3, kernel = 5, pad = 2;
  const auto img = RandomVec(static_cast<size_t>(channels * hw * hw), 3);
  const int64_t out = ops::ConvOutDim(hw, kernel, 1, pad);
  std::vector<float> cols(
      static_cast<size_t>(channels * kernel * kernel * out * out));
  for (auto _ : state) {
    ops::Im2Col(img.data(), channels, hw, hw, kernel, kernel, 1, 1, pad, pad,
                cols.data());
    benchmark::DoNotOptimize(cols.data());
  }
}
BENCHMARK(BM_Im2Col)->Arg(12)->Arg(28)->Arg(32);

void BM_CnnForwardBackward(benchmark::State& state) {
  // One training step of the scaled bench CNN on a batch of 10 — the unit
  // of work the simulator performs per client batch.
  Rng rng(4);
  auto model = BuildModel(BenchCnnConfig(1, 12));
  model->Initialize(&rng);
  Tensor x(Shape({10, 1, 12, 12}));
  x.FillNormal(&rng);
  const std::vector<int> labels{0, 1, 2, 3, 4, 5, 6, 7, 8, 9};
  for (auto _ : state) {
    model->ZeroGrad();
    benchmark::DoNotOptimize(model->ForwardBackward(x, labels));
  }
}
BENCHMARK(BM_CnnForwardBackward);

void BM_PaperCnn1Forward(benchmark::State& state) {
  // Table II model at batch 1: documents the CPU cost of paper-scale runs.
  Rng rng(5);
  auto model = BuildModel(PaperCnn1Config());
  model->Initialize(&rng);
  Tensor x(Shape({1, 1, 28, 28}));
  x.FillNormal(&rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(model->Predict(x));
  }
}
BENCHMARK(BM_PaperCnn1Forward);

void BM_VecAxpy(benchmark::State& state) {
  const size_t d = static_cast<size_t>(state.range(0));
  const auto x = RandomVec(d, 6);
  auto y = RandomVec(d, 7);
  for (auto _ : state) {
    vec::Axpy(0.01f, x, y);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<int64_t>(d) * 2 * 4);
}
BENCHMARK(BM_VecAxpy)->Arg(4096)->Arg(1 << 17)->Arg(1663370);

// The server-aggregation reduction: |S| deltas fused into θ in one blocked
// pass. Arg0 = dim, Arg1 = number of vectors, Arg2 = pool threads (0 =
// serial). Results are bitwise identical across all thread counts.
void BM_AxpyMany(benchmark::State& state) {
  const size_t d = static_cast<size_t>(state.range(0));
  const size_t count = static_cast<size_t>(state.range(1));
  const int threads = static_cast<int>(state.range(2));
  std::vector<std::vector<float>> xs;
  for (size_t i = 0; i < count; ++i) xs.push_back(RandomVec(d, 20 + i));
  std::vector<std::span<const float>> views(xs.begin(), xs.end());
  auto y = RandomVec(d, 19);
  std::unique_ptr<ThreadPool> pool;
  if (threads > 0) pool = std::make_unique<ThreadPool>(threads);
  for (auto _ : state) {
    vec::AxpyMany(0.01f, views, y, pool.get());
    benchmark::DoNotOptimize(y.data());
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<int64_t>(d * (count + 2)) * 4);
}
BENCHMARK(BM_AxpyMany)
    ->Args({1 << 17, 32, 0})
    ->Args({1 << 17, 32, 4})
    ->Args({1 << 17, 32, 8})
    ->Args({1663370, 10, 0})
    ->Args({1663370, 10, 8});

void BM_BlockedMean(benchmark::State& state) {
  const size_t d = static_cast<size_t>(state.range(0));
  const int threads = static_cast<int>(state.range(1));
  std::vector<std::vector<float>> xs;
  for (size_t i = 0; i < 16; ++i) xs.push_back(RandomVec(d, 40 + i));
  std::vector<std::span<const float>> views(xs.begin(), xs.end());
  std::vector<float> out(d);
  std::unique_ptr<ThreadPool> pool;
  if (threads > 0) pool = std::make_unique<ThreadPool>(threads);
  for (auto _ : state) {
    vec::BlockedMean(views, out, pool.get());
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_BlockedMean)->Args({1 << 17, 0})->Args({1 << 17, 8});

// The Eq.-20 diagnostic over all m clients: historically a scalar double
// loop dividing y_[i][k] by ρ m·d times; now a hoisted-reciprocal blocked
// reduction over store views. Arg0 = clients, Arg1 = dim, Arg2 = threads.
void BM_MeanAugmentedModel(benchmark::State& state) {
  const int m = static_cast<int>(state.range(0));
  const int64_t d = state.range(1);
  const int threads = static_cast<int>(state.range(2));
  FedAdmmOptions options;
  options.rho = StepSchedule(0.5);
  FedAdmm algo(options);
  std::unique_ptr<ThreadPool> pool;
  if (threads > 0) pool = std::make_unique<ThreadPool>(threads);
  AlgorithmContext ctx;
  ctx.num_clients = m;
  ctx.dim = d;
  ctx.reduce_pool = pool.get();
  const auto theta0 = RandomVec(static_cast<size_t>(d), 12);
  algo.Setup(ctx, theta0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(algo.MeanAugmentedModel(0));
  }
  state.SetBytesProcessed(state.iterations() * 2 * m * d * 4);
}
BENCHMARK(BM_MeanAugmentedModel)
    ->Args({256, 1 << 15, 0})
    ->Args({256, 1 << 15, 8});

void BM_VecDot(benchmark::State& state) {
  const size_t d = static_cast<size_t>(state.range(0));
  const auto x = RandomVec(d, 8);
  const auto y = RandomVec(d, 9);
  for (auto _ : state) {
    benchmark::DoNotOptimize(vec::Dot(x, y));
  }
}
BENCHMARK(BM_VecDot)->Arg(4096)->Arg(1 << 17);

// ---- Dispatched-vs-forced-scalar pairs ------------------------------------
// Each `*Scalar` benchmark is its dispatched twin re-run with the kernel
// table pinned to the scalar reference; the ratio is the SIMD speedup on
// this host (both produce bitwise identical results by contract).

void BM_VecAxpyScalar(benchmark::State& state) {
  ScopedForcedScalar forced;
  const size_t d = static_cast<size_t>(state.range(0));
  const auto x = RandomVec(d, 6);
  auto y = RandomVec(d, 7);
  for (auto _ : state) {
    vec::Axpy(0.01f, x, y);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<int64_t>(d) * 2 * 4);
}
BENCHMARK(BM_VecAxpyScalar)->Arg(1 << 17);

void BM_AxpyManyScalar(benchmark::State& state) {
  ScopedForcedScalar forced;
  const size_t d = static_cast<size_t>(state.range(0));
  const size_t count = static_cast<size_t>(state.range(1));
  std::vector<std::vector<float>> xs;
  for (size_t i = 0; i < count; ++i) xs.push_back(RandomVec(d, 20 + i));
  std::vector<std::span<const float>> views(xs.begin(), xs.end());
  auto y = RandomVec(d, 19);
  for (auto _ : state) {
    vec::AxpyMany(0.01f, views, y, nullptr);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<int64_t>(d * (count + 2)) * 4);
}
BENCHMARK(BM_AxpyManyScalar)->Args({1 << 17, 32});

void BM_VecDotScalar(benchmark::State& state) {
  ScopedForcedScalar forced;
  const size_t d = static_cast<size_t>(state.range(0));
  const auto x = RandomVec(d, 8);
  const auto y = RandomVec(d, 9);
  for (auto _ : state) {
    benchmark::DoNotOptimize(vec::Dot(x, y));
  }
}
BENCHMARK(BM_VecDotScalar)->Arg(1 << 17);

void BM_MatMulScalar(benchmark::State& state) {
  ScopedForcedScalar forced;
  const int64_t n = state.range(0);
  const auto a = RandomVec(static_cast<size_t>(n * n), 1);
  const auto b = RandomVec(static_cast<size_t>(n * n), 2);
  std::vector<float> c(static_cast<size_t>(n * n));
  for (auto _ : state) {
    ops::MatMul(a.data(), b.data(), c.data(), n, n, n);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK(BM_MatMulScalar)->Arg(128);

// The q-codec wire path: per-chunk max|v|, grid quantization, and bit
// packing (encode); bit unpacking and grid reconstruction (decode).
// Arg0 = dim, Arg1 = bits.
void BM_QuantEncode(benchmark::State& state) {
  const size_t d = static_cast<size_t>(state.range(0));
  const int bits = static_cast<int>(state.range(1));
  UniformQuantCodec codec(bits);
  const auto v = RandomVec(d, 13);
  for (auto _ : state) {
    benchmark::DoNotOptimize(codec.Encode(0, v, nullptr));
  }
  state.SetBytesProcessed(state.iterations() * static_cast<int64_t>(d) * 4);
}
BENCHMARK(BM_QuantEncode)->Args({1 << 17, 8})->Args({1 << 17, 12});

void BM_QuantEncodeScalar(benchmark::State& state) {
  ScopedForcedScalar forced;
  const size_t d = static_cast<size_t>(state.range(0));
  const int bits = static_cast<int>(state.range(1));
  UniformQuantCodec codec(bits);
  const auto v = RandomVec(d, 13);
  for (auto _ : state) {
    benchmark::DoNotOptimize(codec.Encode(0, v, nullptr));
  }
  state.SetBytesProcessed(state.iterations() * static_cast<int64_t>(d) * 4);
}
BENCHMARK(BM_QuantEncodeScalar)->Args({1 << 17, 8});

void BM_QuantDecode(benchmark::State& state) {
  const size_t d = static_cast<size_t>(state.range(0));
  const int bits = static_cast<int>(state.range(1));
  UniformQuantCodec codec(bits);
  const Payload payload = codec.Encode(0, RandomVec(d, 14), nullptr);
  for (auto _ : state) {
    benchmark::DoNotOptimize(codec.Decode(payload));
  }
  state.SetBytesProcessed(state.iterations() * static_cast<int64_t>(d) * 4);
}
BENCHMARK(BM_QuantDecode)->Args({1 << 17, 8})->Args({1 << 17, 12});

void BM_QuantDecodeScalar(benchmark::State& state) {
  ScopedForcedScalar forced;
  const size_t d = static_cast<size_t>(state.range(0));
  const int bits = static_cast<int>(state.range(1));
  UniformQuantCodec codec(bits);
  const Payload payload = codec.Encode(0, RandomVec(d, 14), nullptr);
  for (auto _ : state) {
    benchmark::DoNotOptimize(codec.Decode(payload));
  }
  state.SetBytesProcessed(state.iterations() * static_cast<int64_t>(d) * 4);
}
BENCHMARK(BM_QuantDecodeScalar)->Args({1 << 17, 8});

void BM_SoftmaxRows(benchmark::State& state) {
  const int64_t rows = state.range(0);
  const auto logits = RandomVec(static_cast<size_t>(rows * 10), 10);
  std::vector<float> probs(logits.size());
  for (auto _ : state) {
    ops::SoftmaxRows(logits.data(), rows, 10, probs.data());
    benchmark::DoNotOptimize(probs.data());
  }
}
BENCHMARK(BM_SoftmaxRows)->Arg(32)->Arg(256);

void BM_MaxPool(benchmark::State& state) {
  const int64_t hw = state.range(0);
  const auto input = RandomVec(static_cast<size_t>(8 * 4 * hw * hw), 11);
  const int64_t out = hw / 2;
  std::vector<float> output(static_cast<size_t>(8 * 4 * out * out));
  std::vector<int32_t> argmax(output.size());
  for (auto _ : state) {
    ops::MaxPool2dForward(input.data(), 8, 4, hw, hw, 2, 2, output.data(),
                          argmax.data());
    benchmark::DoNotOptimize(output.data());
  }
}
BENCHMARK(BM_MaxPool)->Arg(12)->Arg(28);

// Console output as usual, plus one BenchResult per benchmark run. The
// `_wall_seconds` suffix puts the timings in the wall-clock gating class
// (percentage tolerance, regressions only); iteration counts are
// adaptive, hence informational.
class JsonTeeReporter : public benchmark::ConsoleReporter {
 public:
  explicit JsonTeeReporter(obs::BenchRecorder* recorder)
      : recorder_(recorder) {}

  void ReportRuns(const std::vector<Run>& runs) override {
    benchmark::ConsoleReporter::ReportRuns(runs);
    for (const Run& run : runs) {
      if (run.run_type != Run::RT_Iteration || run.error_occurred) continue;
      const double iters =
          run.iterations > 0 ? static_cast<double>(run.iterations) : 1.0;
      obs::BenchResult* row = recorder_->AddResult(run.benchmark_name());
      row->AddMetric("iterations", static_cast<int64_t>(run.iterations));
      row->AddMetric("real_wall_seconds", run.real_accumulated_time / iters);
      row->AddMetric("cpu_wall_seconds", run.cpu_accumulated_time / iters);
    }
  }

 private:
  obs::BenchRecorder* recorder_;
};

}  // namespace
}  // namespace fedadmm

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;

  fedadmm::obs::BenchRecorder recorder("kernels");
  recorder.AddContext("scale",
                      fedadmm::GetEnvString("FEDADMM_BENCH_SCALE", "small"));
  // Which kernel table the dispatched benchmarks ran: numbers measured on
  // different ISAs are not comparable, so the gate should refuse them.
  recorder.AddContext("isa",
                      fedadmm::simd::IsaName(fedadmm::simd::ActiveIsa()));
  fedadmm::JsonTeeReporter reporter(&recorder);
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();

  const std::string json_path =
      fedadmm::GetEnvString("FEDADMM_BENCH_JSON", "BENCH_kernels.json");
  if (!recorder.WriteFile(json_path).ok()) {
    std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
    return 1;
  }
  std::printf("perf rail written to %s\n", json_path.c_str());
  return 0;
}
