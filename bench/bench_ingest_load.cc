/// \file bench_ingest_load.cc
/// \brief Serving-frontend ingest load: tens of thousands of concurrent
/// wire sessions against the sharded zero-copy admission pipeline.
///
/// Phase A (load): a fleet of FEDADMM_BENCH_SESSIONS clients (default
/// 12000) at 100% participation replays rounds as real sessions over the
/// in-memory loopback transport — connect + HELLO once, then per round
/// PULL the shared MODEL frame, run the true local computation, encode q8
/// and UPLOAD, poll the ACK, resending on THROTTLED. Every session stays
/// connected for the whole run, so peak concurrency equals the fleet
/// size. The cellular fleet + deadline-drop straggler policy exercises
/// the admission predicate (REJECTED acks are mirrored verdicts), and the
/// bounded per-shard ingest queues exercise real backpressure (THROTTLED
/// retries are expected and counted). The phase runs TWICE and hard-fails
/// unless θ and every deterministic ledger field (hellos, acks by status,
/// ingested/model payload bytes, error counts) are identical — the
/// double-run determinism contract of tests/serve at bench scale.
///
/// Phase B (equivalence): a smaller fleet runs the same trace in-process
/// and served, and hard-fails unless θ is bitwise identical and every
/// round record (selection, losses, byte ledgers, simulated time, drops)
/// matches — the serving frontend must be invisible to the training run.
///
/// Output: a summary table on stdout and the persisted perf rail
/// (FEDADMM_BENCH_JSON, default "BENCH_ingest.json"): deterministic
/// `*_count`/`*_bytes` metrics gate exactly in tools/bench_diff; ingest
/// latency percentiles (per-shard serve/ingest_seconds histograms,
/// admission → slot resolution) and updates/sec ride the wall-clock
/// tolerance; throttle/retry tallies are informational (they depend on
/// how producers race the shard workers).
///
/// Knobs: FEDADMM_BENCH_SESSIONS (default 12000), FEDADMM_BENCH_STATE_DIM
/// (default 64), FEDADMM_BENCH_ROUNDS (default 3), FEDADMM_BENCH_THREADS
/// (default 4), FEDADMM_BENCH_INGEST_SHARDS (default 2),
/// FEDADMM_BENCH_QUEUE (default 512), FEDADMM_BENCH_DRIVERS (default 8),
/// FEDADMM_BENCH_EQ_CLIENTS (default 256), FEDADMM_BENCH_DEADLINE_MS
/// (default 230: cuts into the metered-cellular cohort so REJECTED acks
/// exercise the admission predicate), FEDADMM_BENCH_SCALE,
/// FEDADMM_BENCH_JSON.

#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "bench/bench_common.h"
#include "bench/mean_field_problem.h"
#include "comm/codec.h"
#include "core/fedadmm.h"
#include "fl/selection.h"
#include "fl/simulation.h"
#include "obs/bench_recorder.h"
#include "obs/metrics.h"
#include "serve/frontend.h"
#include "serve/loadgen.h"
#include "serve/loopback.h"
#include "sys/system_model.h"

namespace fedadmm::bench {
namespace {

using serve::Frontend;
using serve::FrontendLedger;
using serve::FrontendOptions;
using serve::LoadGenerator;
using serve::LoadGenOptions;
using serve::LoadGenStats;
using serve::LoopbackTransport;
using serve::Transport;

/// One gradient step per round: client compute stays negligible next to
/// the ingest pipeline under test.
LocalTrainSpec LoadLocalSpec() {
  LocalTrainSpec local;
  local.learning_rate = 0.3f;
  local.batch_size = 0;
  local.max_epochs = 1;
  return local;
}

struct ServedRun {
  std::vector<float> theta;
  History history;
  FrontendLedger ledger;
  LoadGenStats stats;
  double wall_seconds = 0.0;
  obs::HistogramStats ingest;
};

/// Runs `clients` sessions over `transport` for `rounds` rounds with q8
/// both ways and the deadline-drop admission predicate mirrored into
/// ACKs. The ingest histograms are scoped to this run.
ServedRun RunServed(int clients, int64_t dim, int rounds, int threads,
                    int shards, int queue_capacity, int drivers,
                    uint64_t seed, double deadline_seconds) {
  using Clock = std::chrono::steady_clock;

  MeanFieldProblem problem(clients, dim, /*seed=*/17);
  FedAvg algo(LoadLocalSpec());
  UniformFractionSelector selector(clients, 1.0);
  FleetModel fleet =
      FleetModel::FromPreset("cellular", clients, /*seed=*/5).ValueOrDie();
  SystemModel model(
      std::move(fleet),
      MakeStragglerPolicy("deadline-drop", deadline_seconds).ValueOrDie());

  SimulationConfig config;
  config.max_rounds = rounds;
  config.seed = seed;
  config.num_threads = threads;
  config.num_shards = shards;
  Simulation sim(&problem, &algo, &selector, config);
  sim.set_system_model(&model);

  // Server-side codec instances plus the sessions' client-side twins.
  auto uplink = MakeUpdateCodec("q8").ValueOrDie();
  auto uplink_twin = MakeUpdateCodec("q8").ValueOrDie();
  auto downlink = MakeUpdateCodec("q8").ValueOrDie();
  auto downlink_twin = MakeUpdateCodec("q8").ValueOrDie();
  sim.set_uplink_codec(uplink.get());
  sim.set_downlink_codec(downlink.get());

  FrontendOptions options;
  options.num_shards = shards;
  options.queue_capacity = queue_capacity;
  options.collect_timeout_seconds = 300.0;
  options.uplink_codec = uplink.get();
  options.system_model = &model;
  Frontend frontend(options);
  sim.set_ingest(&frontend);

  LoopbackTransport transport;
  FEDADMM_CHECK(transport.Start(&frontend).ok());

  LoadGenOptions lg;
  lg.driver_threads = drivers;
  lg.uplink_codec = uplink_twin.get();
  lg.downlink_codec = downlink_twin.get();
  lg.poll_timeout_seconds = 300.0;
  LoadGenerator loadgen(&problem, &algo, seed, threads, shards, &frontend,
                        &transport, lg);

  obs::MetricsRegistry::Global().ResetValues();  // scope metrics per run
  const auto start = Clock::now();
  Status loadgen_status = Status::OK();
  std::thread driver([&] { loadgen_status = loadgen.Run(); });
  auto history = sim.Run();
  frontend.FinishServing();
  driver.join();
  ServedRun run;
  run.wall_seconds =
      std::chrono::duration<double>(Clock::now() - start).count();
  FEDADMM_CHECK_MSG(loadgen_status.ok(), "load generator failed");
  run.history = std::move(history).ValueOrDie();
  run.theta = sim.theta();
  run.ledger = frontend.ledger();
  run.stats = loadgen.stats();
  run.ingest = obs::MetricsRegistry::Global().Snapshot().AggregateHistograms(
      "serve/ingest_seconds");
  transport.Stop();
  return run;
}

/// Counts deterministic-ledger fields that differ between two runs of the
/// same trace (must be 0; gated exactly in the rail).
int64_t LedgerMismatches(const FrontendLedger& a, const FrontendLedger& b) {
  int64_t mismatches = 0;
  mismatches += a.hello_count != b.hello_count;
  mismatches += a.model_frames != b.model_frames;
  mismatches += a.model_payload_bytes != b.model_payload_bytes;
  mismatches += a.acks_accepted != b.acks_accepted;
  mismatches += a.acks_partial != b.acks_partial;
  mismatches += a.acks_rejected != b.acks_rejected;
  mismatches += a.ingested_payload_bytes != b.ingested_payload_bytes;
  mismatches += a.malformed_frames != b.malformed_frames;
  mismatches += a.protocol_errors != b.protocol_errors;
  mismatches += a.decode_errors != b.decode_errors;
  return mismatches;
}

/// Counts round records that differ in any deterministic field.
int64_t RecordMismatches(const History& a, const History& b) {
  if (a.size() != b.size()) return a.size() + b.size();
  int64_t mismatches = 0;
  for (int i = 0; i < a.size(); ++i) {
    const RoundRecord& ra = a.records()[static_cast<size_t>(i)];
    const RoundRecord& rb = b.records()[static_cast<size_t>(i)];
    const bool same =
        ra.num_selected == rb.num_selected &&
        ra.num_dropped == rb.num_dropped &&
        ra.upload_bytes == rb.upload_bytes &&
        ra.download_bytes == rb.download_bytes &&
        ra.sim_seconds == rb.sim_seconds &&
        (ra.train_loss == rb.train_loss ||
         (ra.train_loss != ra.train_loss && rb.train_loss != rb.train_loss)) &&
        (ra.test_accuracy == rb.test_accuracy ||
         (ra.test_accuracy != ra.test_accuracy &&
          rb.test_accuracy != rb.test_accuracy));
    mismatches += !same;
  }
  return mismatches;
}

/// In-process twin of RunServed's Phase B trace (no frontend).
History RunInProcess(int clients, int64_t dim, int rounds, int threads,
                     int shards, uint64_t seed, double deadline_seconds,
                     std::vector<float>* theta) {
  MeanFieldProblem problem(clients, dim, /*seed=*/17);
  FedAvg algo(LoadLocalSpec());
  UniformFractionSelector selector(clients, 1.0);
  FleetModel fleet =
      FleetModel::FromPreset("cellular", clients, /*seed=*/5).ValueOrDie();
  SystemModel model(
      std::move(fleet),
      MakeStragglerPolicy("deadline-drop", deadline_seconds).ValueOrDie());
  SimulationConfig config;
  config.max_rounds = rounds;
  config.seed = seed;
  config.num_threads = threads;
  config.num_shards = shards;
  Simulation sim(&problem, &algo, &selector, config);
  sim.set_system_model(&model);
  auto uplink = MakeUpdateCodec("q8").ValueOrDie();
  auto downlink = MakeUpdateCodec("q8").ValueOrDie();
  sim.set_uplink_codec(uplink.get());
  sim.set_downlink_codec(downlink.get());
  History history = std::move(sim.Run()).ValueOrDie();
  *theta = sim.theta();
  return history;
}

}  // namespace
}  // namespace fedadmm::bench

int main() {
  using namespace fedadmm;
  using namespace fedadmm::bench;

  const int sessions =
      static_cast<int>(GetEnvInt("FEDADMM_BENCH_SESSIONS", 12000));
  const int64_t dim = GetEnvInt("FEDADMM_BENCH_STATE_DIM", 64);
  const int rounds = RoundBudget(3, 6);
  const int threads = static_cast<int>(GetEnvInt("FEDADMM_BENCH_THREADS", 4));
  const int shards =
      static_cast<int>(GetEnvInt("FEDADMM_BENCH_INGEST_SHARDS", 2));
  const int queue = static_cast<int>(GetEnvInt("FEDADMM_BENCH_QUEUE", 512));
  const int drivers = static_cast<int>(GetEnvInt("FEDADMM_BENCH_DRIVERS", 8));
  const int eq_clients =
      static_cast<int>(GetEnvInt("FEDADMM_BENCH_EQ_CLIENTS", 256));
  const double deadline =
      static_cast<double>(GetEnvInt("FEDADMM_BENCH_DEADLINE_MS", 230)) / 1e3;
  const uint64_t seed = 7;

  PrintHeader("Serving-frontend ingest load: " + std::to_string(sessions) +
              " concurrent loopback sessions, d=" + std::to_string(dim) +
              ", " + std::to_string(rounds) + " rounds, W=" +
              std::to_string(shards) + ", queue=" + std::to_string(queue) +
              ", q8 uplink+downlink, deadline-drop admission");

  // Enable the registry before any Frontend exists: the per-shard ingest
  // histograms are registered at construction.
  obs::MetricsRegistry::Global().set_enabled(true);

  obs::BenchRecorder recorder("ingest_load");
  recorder.AddContext("sessions", static_cast<int64_t>(sessions));
  recorder.AddContext("dim", dim);
  recorder.AddContext("rounds", static_cast<int64_t>(rounds));
  recorder.AddContext("threads", static_cast<int64_t>(threads));
  recorder.AddContext("shards", static_cast<int64_t>(shards));
  recorder.AddContext("queue", static_cast<int64_t>(queue));
  recorder.AddContext("drivers", static_cast<int64_t>(drivers));
  recorder.AddContext("eq_clients", static_cast<int64_t>(eq_clients));
  recorder.AddContext("uplink", "q8");
  recorder.AddContext("downlink", "q8");
  recorder.AddContext("fleet", "cellular");
  recorder.AddContext("policy", "deadline-drop");
  recorder.AddContext("deadline_ms",
                      static_cast<int64_t>(deadline * 1e3 + 0.5));

  // ---- Phase A: load, twice (the double-run determinism contract). ----
  const ServedRun first = RunServed(sessions, dim, rounds, threads, shards,
                                    queue, drivers, seed, deadline);
  const ServedRun second = RunServed(sessions, dim, rounds, threads, shards,
                                     queue, drivers, seed, deadline);
  const int64_t ledger_mismatches =
      LedgerMismatches(first.ledger, second.ledger);
  const int64_t rerun_theta_mismatch = first.theta != second.theta;
  if (ledger_mismatches != 0 || rerun_theta_mismatch != 0) {
    std::fprintf(stderr,
                 "FAIL: double run diverged (%" PRId64
                 " ledger fields, theta mismatch %" PRId64
                 ") — the serving frontend leaked timing into the ledger\n",
                 ledger_mismatches, rerun_theta_mismatch);
    return 1;
  }

  // Report the second (warm) run; its deterministic fields equal the
  // first's by the check above.
  const ServedRun& load = second;
  const int64_t updates = load.ledger.acks_accepted +
                          load.ledger.acks_partial +
                          load.ledger.acks_rejected;
  const double updates_per_sec =
      load.wall_seconds > 0.0 ? updates / load.wall_seconds : 0.0;

  std::printf("\n%-26s | %12s\n", "load phase", "value");
  std::printf("---------------------------+-------------\n");
  std::printf("%-26s | %12" PRId64 "\n", "peak sessions",
              load.ledger.peak_sessions);
  std::printf("%-26s | %12" PRId64 "\n", "updates resolved", updates);
  std::printf("%-26s | %12.2f\n", "wall seconds", load.wall_seconds);
  std::printf("%-26s | %12.0f\n", "updates/sec", updates_per_sec);
  std::printf("%-26s | %12" PRId64 "\n", "acks accepted",
              load.ledger.acks_accepted);
  std::printf("%-26s | %12" PRId64 "\n", "acks rejected (mirrored)",
              load.ledger.acks_rejected);
  std::printf("%-26s | %12" PRId64 "\n", "throttled (backpressure)",
              load.ledger.throttled);
  std::printf("%-26s | %12" PRId64 "\n", "throttle retries (client)",
              load.stats.throttle_retries);
  std::printf("%-26s | %12.1f\n", "ingest p50 (us)",
              load.ingest.Percentile(50.0) * 1e6);
  std::printf("%-26s | %12.1f\n", "ingest p99 (us)",
              load.ingest.Percentile(99.0) * 1e6);

  obs::BenchResult* row = recorder.AddResult("load");
  row->AddMetric("hello_count", load.ledger.hello_count);
  row->AddMetric("updates_count", updates);
  row->AddMetric("acks_accepted_count", load.ledger.acks_accepted);
  row->AddMetric("acks_partial_count", load.ledger.acks_partial);
  row->AddMetric("acks_rejected_count", load.ledger.acks_rejected);
  row->AddMetric("model_frames_count", load.ledger.model_frames);
  row->AddMetric("model_payload_bytes", load.ledger.model_payload_bytes);
  row->AddMetric("ingested_payload_bytes",
                 load.ledger.ingested_payload_bytes);
  row->AddMetric("malformed_frames_count", load.ledger.malformed_frames);
  row->AddMetric("protocol_errors_count", load.ledger.protocol_errors);
  row->AddMetric("decode_errors_count", load.ledger.decode_errors);
  row->AddMetric("rerun_ledger_mismatch_count", ledger_mismatches);
  row->AddMetric("rerun_theta_mismatch_count", rerun_theta_mismatch);
  // Informational: concurrency peak and backpressure tallies depend on
  // how transport threads race the shard workers.
  row->AddMetric("peak_sessions", load.ledger.peak_sessions);
  row->AddMetric("throttled_total", load.ledger.throttled);
  row->AddMetric("throttle_retries_total", load.stats.throttle_retries);
  row->AddMetric("transport_bytes_in_total", load.ledger.bytes_in);
  row->AddMetric("run_wall_seconds", load.wall_seconds);
  row->AddMetric("updates_per_sec", updates_per_sec);
  row->AddLatencyMetrics("ingest", "_wall_seconds", load.ingest);

  // ---- Phase B: served == in-process, bitwise. ----
  using Clock = std::chrono::steady_clock;
  const auto eq_start = Clock::now();
  std::vector<float> local_theta;
  const History local = RunInProcess(eq_clients, dim, rounds, threads,
                                     shards, seed, deadline, &local_theta);
  const double inproc_wall =
      std::chrono::duration<double>(Clock::now() - eq_start).count();
  const ServedRun served = RunServed(eq_clients, dim, rounds, threads,
                                     shards, queue, drivers, seed, deadline);
  const int64_t theta_mismatch = served.theta != local_theta;
  const int64_t record_mismatches = RecordMismatches(served.history, local);
  if (theta_mismatch != 0 || record_mismatches != 0) {
    std::fprintf(stderr,
                 "FAIL: served run diverged from in-process (theta %" PRId64
                 ", %" PRId64
                 " round records) — the frontend is not invisible\n",
                 theta_mismatch, record_mismatches);
    return 1;
  }
  std::printf("\n%-26s | %12s\n", "equivalence phase", "value");
  std::printf("---------------------------+-------------\n");
  std::printf("%-26s | %12d\n", "clients", eq_clients);
  std::printf("%-26s | %12s\n", "theta", "bitwise ==");
  std::printf("%-26s | %12d\n", "round records matched", local.size());
  std::printf("%-26s | %12.4f\n", "final accuracy",
              local.FinalAccuracy());

  obs::BenchResult* eq = recorder.AddResult("equivalence");
  eq->AddMetric("theta_mismatch_count", theta_mismatch);
  eq->AddMetric("record_mismatch_count", record_mismatches);
  eq->AddMetric("rounds_count", static_cast<int64_t>(local.size()));
  eq->AddMetric("upload_bytes", local.TotalUploadBytes());
  eq->AddMetric("final_accuracy", local.FinalAccuracy());
  eq->AddMetric("inproc_wall_seconds", inproc_wall);
  eq->AddMetric("served_wall_seconds", served.wall_seconds);

  const std::string json_path =
      GetEnvString("FEDADMM_BENCH_JSON", "BENCH_ingest.json");
  if (!recorder.WriteFile(json_path).ok()) {
    std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
    return 1;
  }
  std::printf("\nperf rail written to %s\n", json_path.c_str());
  std::printf(
      "\nBoth load runs produced identical ledgers and bitwise-identical\n"
      "theta, and the served %d-client run matches its in-process twin\n"
      "record for record: the wire pipeline adds throughput knobs, not\n"
      "behavior.\n",
      eq_clients);
  PrintFootnote();
  return 0;
}
