/// \file bench_shard_scale.cc
/// \brief 1M-client sharded-aggregation-server scaling (W workers).
///
/// At 1 000 000 clients with 1% participation, a round aggregates 10 000
/// Δ_i vectors. With d = 128 far below the fixed reduction block
/// (tensor/vec.h kReduceBlock = 8192), the unsharded server reduce is a
/// single serial block no thread pool can split — aggregation becomes the
/// wall-clock floor of the whole simulated round. The sharded server
/// (SimulationConfig::num_shards = W) forms W per-shard partials from the
/// canonical client partition and combines them in fixed shard order:
/// W × blocks tasks run concurrently, and each W is bitwise reproducible
/// at any thread count (W = 1 is the exact legacy path).
///
/// This bench runs the same cross-device-churn round set at W ∈ {1,2,4,8}
/// and reports wall time, speedup over W = 1, per-shard resident state
/// (sharded store accounting), and the accuracy trajectory. Per-W
/// determinism means two identical invocations produce byte-identical
/// CSVs; across W the reduce regroups float additions, so trajectories
/// may differ in the last ulp — the bench hard-fails if any W's accuracy
/// trajectory drifts more than 1e-6 from W = 1.
///
/// Output: a summary table on stdout and a deterministic per-round CSV
/// (FEDADMM_BENCH_CSV, default "bench_shard_scale.csv") with `shards` and
/// `store` context columns ahead of the canonical fl/history_csv round
/// columns (wall_seconds forced to 0).
///
/// Besides stdout + CSV, each W lands one row in the obs perf rail
/// (BENCH_shard_scale.json via FEDADMM_BENCH_JSON): deterministic resident
/// bytes and aggregation counts gate at 0% in tools/bench_diff, the run's
/// wall seconds plus the engine's per-phase aggregate latency histogram
/// (obs metrics registry, reset per W) at the wall-clock tolerance.
///
/// Knobs: FEDADMM_BENCH_CLIENTS (default 1000000), FEDADMM_BENCH_SHARDS
/// (default "1,2,4,8"), FEDADMM_BENCH_THREADS (default 8),
/// FEDADMM_BENCH_STORE (default "lazy"), FEDADMM_BENCH_STATE_DIM (default
/// 128), FEDADMM_BENCH_ROUNDS, FEDADMM_BENCH_SCALE, FEDADMM_BENCH_CSV,
/// FEDADMM_BENCH_JSON (default "BENCH_shard_scale.json").

#include <chrono>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "bench/mean_field_problem.h"
#include "core/fedadmm.h"
#include "fl/history_csv.h"
#include "fl/selection.h"
#include "fl/simulation.h"
#include "obs/bench_recorder.h"
#include "obs/metrics.h"
#include "state/sharded_store.h"
#include "sys/system_model.h"
#include "tensor/vec.h"

namespace fedadmm::bench {
namespace {

std::string FormatMiB(int64_t bytes) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2f",
                static_cast<double>(bytes) / (1024.0 * 1024.0));
  return buf;
}

std::vector<int> ParseShardList(const std::string& csv) {
  std::vector<int> shards;
  for (const std::string& field : ParseCodecList(csv)) {
    const int w = std::atoi(field.c_str());
    if (w >= 1) shards.push_back(w);
  }
  if (shards.empty()) shards.push_back(1);
  return shards;
}

}  // namespace
}  // namespace fedadmm::bench

int main() {
  using namespace fedadmm;
  using namespace fedadmm::bench;
  using Clock = std::chrono::steady_clock;

  const int clients =
      static_cast<int>(GetEnvInt("FEDADMM_BENCH_CLIENTS", 1000000));
  const int64_t dim = GetEnvInt("FEDADMM_BENCH_STATE_DIM", 128);
  const int threads =
      static_cast<int>(GetEnvInt("FEDADMM_BENCH_THREADS", 8));
  const int rounds = RoundBudget(4, 8);
  const double participation = 0.01;
  const std::string store = GetEnvString("FEDADMM_BENCH_STORE", "lazy");
  const std::vector<int> shard_counts =
      ParseShardList(GetEnvString("FEDADMM_BENCH_SHARDS", "1,2,4,8"));

  PrintHeader("Sharded aggregation server: " + std::to_string(clients) +
              "-client cross-device-churn fleet, " +
              std::to_string(static_cast<int>(participation * 100)) +
              "% participation, d=" + std::to_string(dim) + ", store=" +
              store + ", threads=" + std::to_string(threads));

  HistoryCsvWriter csv;
  const std::string csv_path =
      GetEnvString("FEDADMM_BENCH_CSV", "bench_shard_scale.csv");
  if (!csv.Open(csv_path, {"shards", "store"}, /*deterministic_only=*/true)
           .ok()) {
    std::fprintf(stderr, "cannot write %s\n", csv_path.c_str());
    return 1;
  }

  obs::BenchRecorder recorder("shard_scale");
  recorder.AddContext("clients", static_cast<int64_t>(clients));
  recorder.AddContext("dim", dim);
  recorder.AddContext("threads", static_cast<int64_t>(threads));
  recorder.AddContext("rounds", static_cast<int64_t>(rounds));
  recorder.AddContext("store", store);
  // Enable the obs registry for the whole sweep: the engine's phase
  // histograms feed per-W latency metrics, and the equivalence tests
  // guarantee enabling it cannot move the trajectories.
  obs::MetricsRegistry::Global().set_enabled(true);

  // One shared fleet + problem: availability churn filters selection; the
  // schedule (selection, timing, byte ledgers) is identical across W.
  MeanFieldProblem problem(clients, dim, /*seed=*/17);
  FleetModel fleet =
      FleetModel::FromPreset("cross-device-churn", clients, 29).ValueOrDie();
  SystemModel model(FleetModel(fleet),
                    MakeStragglerPolicy("wait-for-all", -1.0).ValueOrDie());

  std::printf("\n%-7s | %9s | %9s | %8s | %12s | %14s | %9s\n", "shards",
              "rounds", "wall s", "speedup", "resident MiB",
              "max shard MiB", "final acc");
  std::printf("--------+-----------+-----------+----------+--------------+"
              "----------------+----------\n");

  double base_wall = -1.0;
  std::vector<double> base_acc;
  double worst_drift = 0.0;
  for (const int w : shard_counts) {
    FedAdmmOptions options;
    options.local.learning_rate = 0.3f;
    options.local.batch_size = 0;
    options.local.max_epochs = 2;
    options.local.variable_epochs = true;
    options.rho = StepSchedule(1.0);
    options.eta_active_fraction = true;
    options.state_store = store;
    FedAdmm algo(options);

    UniformFractionSelector base(clients, participation);
    AvailabilityFilterSelector selector(&base, &fleet);

    SimulationConfig config;
    config.max_rounds = rounds;
    config.seed = 7;
    config.num_threads = threads;
    config.num_shards = w;
    Simulation sim(&problem, &algo, &selector, config);
    sim.set_system_model(&model);
    obs::MetricsRegistry::Global().ResetValues();  // scope metrics per W
    const auto start = Clock::now();
    const History history = std::move(sim.Run()).ValueOrDie();
    const double wall =
        std::chrono::duration<double>(Clock::now() - start).count();
    if (!csv.AppendHistory({std::to_string(w), store}, history).ok()) {
      std::fprintf(stderr, "CSV write failed\n");
      return 1;
    }

    if (base_wall < 0.0) base_wall = wall;
    const int64_t resident = history.records().back().state_bytes_resident;
    int64_t max_shard = resident;
    if (const auto* sharded = dynamic_cast<const ShardedStateStore*>(
            &algo.state_store())) {
      max_shard = 0;
      for (int s = 0; s < sharded->num_active_shards(); ++s) {
        if (sharded->bytes_resident_shard(s) > max_shard) {
          max_shard = sharded->bytes_resident_shard(s);
        }
      }
    }

    obs::BenchResult* row = recorder.AddResult("W=" + std::to_string(w));
    row->AddMetric("aggregations_count",
                   static_cast<int64_t>(history.size()));
    row->AddMetric("state_resident_bytes", resident);
    row->AddMetric("max_shard_resident_bytes", max_shard);
    row->AddMetric("upload_bytes", history.TotalUploadBytes());
    row->AddMetric("run_wall_seconds", wall);
    row->AddMetric("speedup", wall > 0.0 ? base_wall / wall : 0.0);
    row->AddMetric("final_accuracy", history.FinalAccuracy());
    const obs::MetricsSnapshot snapshot =
        obs::MetricsRegistry::Global().Snapshot();
    row->AddLatencyMetrics(
        "aggregate", "_wall_seconds",
        snapshot.AggregateHistograms("server/phase/aggregate_seconds"));
    std::printf("%-7d | %9d | %9.2f | %7.2fx | %12s | %14s | %9.4f\n", w,
                history.size(), wall,
                wall > 0.0 ? base_wall / wall : 0.0,
                FormatMiB(resident).c_str(), FormatMiB(max_shard).c_str(),
                history.FinalAccuracy());

    std::vector<double> acc;
    for (const RoundRecord& r : history.records()) {
      acc.push_back(r.test_accuracy);
    }
    if (base_acc.empty()) {
      base_acc = acc;
      continue;
    }
    // Sharding regroups the reduce's float additions; the trajectory must
    // stay within last-ulp-accumulation distance of W = 1.
    if (acc.size() != base_acc.size()) {
      std::fprintf(stderr, "FAIL: W=%d produced %zu records, W=%d %zu\n", w,
                   acc.size(), shard_counts.front(), base_acc.size());
      return 1;
    }
    for (size_t i = 0; i < acc.size(); ++i) {
      const double drift = std::fabs(acc[i] - base_acc[i]);
      if (drift > worst_drift) worst_drift = drift;
      if (drift > 1e-6) {
        std::fprintf(stderr,
                     "FAIL: W=%d accuracy drifted %.3e from W=%d at round "
                     "%zu (determinism bug, not reduce regrouping)\n",
                     w, drift, shard_counts.front(), i);
        return 1;
      }
    }
  }

  if (!csv.Close().ok()) {
    std::fprintf(stderr, "CSV close failed\n");
    return 1;
  }
  const std::string json_path =
      GetEnvString("FEDADMM_BENCH_JSON", "BENCH_shard_scale.json");
  if (!recorder.WriteFile(json_path).ok()) {
    std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
    return 1;
  }
  std::printf("perf rail written to %s\n", json_path.c_str());
  std::printf(
      "\nAccuracy trajectories agree across W (max drift %.3e <= 1e-6):\n"
      "the hierarchical reduce only regroups float additions. Each W is\n"
      "bitwise reproducible at any thread count — rerun with identical\n"
      "knobs and diff the CSV. CSV: %s\n",
      worst_drift, csv_path.c_str());
  PrintFootnote();
  return 0;
}
