/// \file bench_fig9_dynamic_rho.cc
/// \brief Reproduces Fig. 9: FedADMM under different proximal coefficients
/// ρ, including a dynamic schedule — small ρ early (efficient incorporation
/// of local data while the global model is uninformed), larger ρ later
/// (shrinking client-server discrepancy).

#include <cstdio>

#include "bench/bench_common.h"

namespace {

using namespace fedadmm;
using namespace fedadmm::bench;

std::vector<double> Series(Scenario* scenario, const StepSchedule& rho,
                           int rounds, uint64_t seed) {
  FedAdmmOptions options = BenchAdmmOptions();
  options.rho = rho;
  FedAdmm algo(options);
  const History h = RunScenario(scenario, &algo, 0.1, rounds, seed);
  std::vector<double> acc;
  for (const RoundRecord& r : h.records()) acc.push_back(r.test_accuracy);
  return acc;
}

}  // namespace

int main() {
  PrintHeader("Fig. 9 — FedADMM under static and dynamic ρ schedules");

  const int rounds = RoundBudget(36, 100);
  const int switch_round = rounds / 2;
  const float low = kBenchRho * 0.5f;
  const float high = kBenchRho * 2.0f;

  for (bool iid : {true, false}) {
    Scenario scenario = MakeScenario(TaskKind::kFmnistLike, 100, iid, 9);
    std::printf("\n%s (accuracy per round)\n", iid ? "IID" : "non-IID");
    std::printf("%-6s %-12s %-12s %-16s\n", "round",
                ("rho=" + std::to_string(low)).substr(0, 10).c_str(),
                ("rho=" + std::to_string(high)).substr(0, 10).c_str(),
                "low->high@switch");

    const auto a = Series(&scenario, StepSchedule(low), rounds, 91);
    const auto b = Series(&scenario, StepSchedule(high), rounds, 91);
    StepSchedule dynamic(low);
    dynamic.AddSwitch(switch_round, high);
    const auto c = Series(&scenario, dynamic, rounds, 91);

    const int step = std::max(1, rounds / 12);
    for (int r = 0; r < rounds; r += step) {
      std::printf("%-6d %-12.3f %-12.3f %-16.3f\n", r,
                  a[static_cast<size_t>(r)], b[static_cast<size_t>(r)],
                  c[static_cast<size_t>(r)]);
    }
    std::printf("final  %-12.3f %-12.3f %-16.3f\n", a.back(), b.back(),
                c.back());
  }

  std::printf(
      "\npaper shape: smaller ρ is faster early, larger ρ steadier late;\n"
      "switching low->high mid-run combines both advantages.\n");
  PrintFootnote();
  return 0;
}
