/// \file mean_field_problem.h
/// \brief ½‖w − t_i‖² fleet problem: O(d) memory at any population size.
///
/// Client i's target t_i ~ N(0, spread²)^d is forked from a master Rng and
/// recomputed on demand, so the problem stores only the streamed mean
/// target t̄ — the closed-form optimum of the global objective. The scale
/// benches (bench_state_scale, bench_shard_scale, bench_ingest_load) share
/// it so the subsystem under test — state store, server reduce, serving
/// frontend — is the dominant cost, not client compute.

#ifndef FEDADMM_BENCH_MEAN_FIELD_PROBLEM_H_
#define FEDADMM_BENCH_MEAN_FIELD_PROBLEM_H_

#include <cmath>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "fl/problem.h"
#include "util/rng.h"

namespace fedadmm::bench {

/// \brief The fleet-side problem (see file comment).
class MeanFieldProblem : public FederatedProblem {
 public:
  MeanFieldProblem(int num_clients, int64_t dim, uint64_t seed)
      : num_clients_(num_clients), dim_(dim), master_(seed) {
    // Closed-form optimum of the global objective: t̄ (streamed once).
    mean_target_.assign(static_cast<size_t>(dim), 0.0);
    std::vector<float> target(static_cast<size_t>(dim));
    for (int c = 0; c < num_clients; ++c) {
      FillTarget(c, target);
      for (size_t k = 0; k < target.size(); ++k) {
        mean_target_[k] += target[k];
      }
    }
    for (double& v : mean_target_) v /= num_clients;
  }

  int num_clients() const override { return num_clients_; }
  int64_t dim() const override { return dim_; }
  int num_workers() const override { return 1 << 16; }  // stateless workers

  std::unique_ptr<LocalProblem> MakeLocalProblem(int client,
                                                 int worker) override;

  EvalResult Evaluate(std::span<const float> theta, int worker) override {
    (void)worker;
    double dist_sq = 0.0;
    for (size_t k = 0; k < theta.size(); ++k) {
      const double d = static_cast<double>(theta[k]) - mean_target_[k];
      dist_sq += d * d;
    }
    const double dist = std::sqrt(dist_sq);
    EvalResult result;
    result.accuracy = 1.0 / (1.0 + dist);
    result.loss = 0.5 * dist_sq;
    return result;
  }

  std::vector<float> InitialParameters(Rng* rng) override {
    std::vector<float> theta(static_cast<size_t>(dim_));
    for (auto& v : theta) v = static_cast<float>(rng->Normal(0.0, 1.0));
    return theta;
  }

  /// Re-derives client `c`'s target into `out` (deterministic, O(d)).
  void FillTarget(int client, std::span<float> out) const {
    Rng rng = master_.Fork(0x7A46E7, static_cast<uint64_t>(client));
    for (auto& v : out) v = static_cast<float>(rng.Normal(0.0, kSpread));
  }

 private:
  static constexpr double kSpread = 1.5;

  int num_clients_;
  int64_t dim_;
  Rng master_;
  std::vector<double> mean_target_;
};

/// \brief One client's view: exact gradient, a few pseudo-samples.
class MeanFieldLocalProblem : public LocalProblem {
 public:
  MeanFieldLocalProblem(const MeanFieldProblem* problem, int client)
      : dim_(problem->dim()), target_(static_cast<size_t>(problem->dim())) {
    problem->FillTarget(client, target_);
  }

  int64_t dim() const override { return dim_; }
  int num_samples() const override { return kPseudoSamples; }

  double BatchLossGradient(std::span<const float> w,
                           const std::vector<int>& batch,
                           std::span<float> grad) override {
    (void)batch;
    return FullLossGradient(w, grad);
  }

  std::vector<std::vector<int>> EpochBatches(int batch_size,
                                             Rng* rng) override {
    (void)rng;
    int steps = 1;
    if (batch_size > 0 && batch_size < kPseudoSamples) {
      steps = (kPseudoSamples + batch_size - 1) / batch_size;
    }
    std::vector<std::vector<int>> batches(static_cast<size_t>(steps));
    for (auto& b : batches) b = {0};  // gradient is exact
    return batches;
  }

  double FullLossGradient(std::span<const float> w,
                          std::span<float> grad) override {
    double loss = 0.0;
    for (size_t k = 0; k < target_.size(); ++k) {
      const float diff = w[k] - target_[k];
      grad[k] = diff;
      loss += 0.5 * static_cast<double>(diff) * diff;
    }
    return loss;
  }

 private:
  static constexpr int kPseudoSamples = 4;

  int64_t dim_;
  std::vector<float> target_;
};

inline std::unique_ptr<LocalProblem> MeanFieldProblem::MakeLocalProblem(
    int client, int worker) {
  (void)worker;
  return std::make_unique<MeanFieldLocalProblem>(this, client);
}

}  // namespace fedadmm::bench

#endif  // FEDADMM_BENCH_MEAN_FIELD_PROBLEM_H_
