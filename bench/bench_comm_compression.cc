/// \file bench_comm_compression.cc
/// \brief Communication-efficiency study: codecs × fleet presets (src/comm).
///
/// Sweeps uplink codecs over FedADMM / FedAvg / SCAFFOLD under the
/// `wait-for-all` policy, which isolates the transfer leg: with no deadline
/// there are no drops, so any sim-seconds gap between codec rows is purely
/// the smaller payload moving over the same links. The `uniform` preset
/// (fat symmetric links) shows where compression barely matters; the
/// `cellular` preset (40% of clients on a metered 0.25 MB/s uplink) is
/// where a 4-30x smaller payload buys a proportional chunk of the round's
/// critical path. SCAFFOLD uploads two vectors per round and pays double
/// for its accuracy head start — visible in the wire-MB column.
///
/// Output: summary table on stdout and a deterministic per-round CSV
/// (FEDADMM_BENCH_CSV, default "bench_comm_compression.csv") with context
/// columns preset,codec,algorithm followed by the canonical
/// fl/history_csv round columns (wall_seconds forced to 0). Double runs
/// diff clean: nothing host-dependent is written.
///
/// Knobs: FEDADMM_BENCH_ROUNDS, FEDADMM_BENCH_SCALE, FEDADMM_BENCH_CSV,
/// FEDADMM_BENCH_CODECS (default "identity,fp16,q8,sq4,topk10,ef:topk10").

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "comm/codec.h"
#include "fl/history_csv.h"
#include "sys/system_model.h"

namespace {

using namespace fedadmm;
using namespace fedadmm::bench;

constexpr double kTargetAccuracy = 0.80;

History RunWithCodec(Scenario* scenario, FederatedAlgorithm* algo,
                     const SystemModel* model, UpdateCodec* uplink,
                     int rounds, uint64_t seed) {
  UniformFractionSelector base(scenario->problem->num_clients(), 0.3);
  AvailabilityFilterSelector selector(&base, &model->fleet());
  SimulationConfig config;
  config.max_rounds = rounds;
  config.seed = seed;
  config.num_threads = 8;
  Simulation sim(scenario->problem.get(), algo, &selector, config);
  sim.set_system_model(model);
  sim.set_uplink_codec(uplink);
  return std::move(sim.Run()).ValueOrDie();
}

}  // namespace

int main() {
  char title[160];
  std::snprintf(title, sizeof(title),
                "Uplink compression: codecs x fleets on the virtual clock "
                "(wait-for-all; target acc %.2f)",
                kTargetAccuracy);
  PrintHeader(title);

  const int rounds = RoundBudget(12, 40);
  const uint64_t fleet_seed = 3;
  const uint64_t run_seed = 11;
  const std::vector<std::string> presets = {"uniform", "cellular"};
  const std::vector<std::string> algos = {"FedADMM", "FedAvg", "SCAFFOLD"};
  const std::vector<std::string> codecs = ParseCodecList(GetEnvString(
      "FEDADMM_BENCH_CODECS", "identity,fp16,q8,sq4,topk10,ef:topk10"));

  HistoryCsvWriter csv;
  const std::string csv_path =
      GetEnvString("FEDADMM_BENCH_CSV", "bench_comm_compression.csv");
  if (!csv.Open(csv_path, {"preset", "codec", "algorithm"},
                /*deterministic_only=*/true)
           .ok()) {
    std::fprintf(stderr, "cannot write %s\n", csv_path.c_str());
    return 1;
  }

  std::printf("%-10s %-10s %-9s %7s %9s %8s %8s %6s %8s\n", "fleet",
              "codec", "algo", "rounds", "sim-sec", "wireMB", "rawMB",
              "ratio", "finalacc");

  Scenario scenario = MakeScenario(TaskKind::kMnistLike, /*clients=*/30,
                                   /*iid=*/false, /*seed=*/1,
                                   /*samples_per_client=*/12);

  for (const std::string& preset : presets) {
    const FleetModel fleet =
        FleetModel::FromPreset(preset, scenario.clients, fleet_seed)
            .ValueOrDie();
    const SystemModel model(fleet, std::make_unique<WaitForAllPolicy>());

    for (const std::string& codec_spec : codecs) {
      for (const std::string& algo_name : algos) {
        std::unique_ptr<FederatedAlgorithm> algo =
            MakeBenchAlgorithm(algo_name);
        // Fresh codec per run: ef:* residuals must not leak across runs.
        auto codec = MakeUpdateCodec(codec_spec).ValueOrDie();
        const History h = RunWithCodec(&scenario, algo.get(), &model,
                                       codec.get(), rounds, run_seed);

        if (!csv.AppendHistory({preset, codec_spec, algo_name}, h).ok()) {
          std::fprintf(stderr, "CSV write failed\n");
          return 1;
        }

        const double wire_mb =
            static_cast<double>(h.TotalUploadBytes()) / 1.0e6;
        const double raw_mb =
            static_cast<double>(h.TotalUploadBytesRaw()) / 1.0e6;
        std::printf("%-10s %-10s %-9s %7s %9s %8.2f %8.2f %5.1fx %8.3f\n",
                    preset.c_str(), codec_spec.c_str(), algo_name.c_str(),
                    FormatRounds(h.RoundsToAccuracy(kTargetAccuracy), rounds)
                        .c_str(),
                    FormatSeconds(h.SimSecondsToAccuracy(kTargetAccuracy))
                        .c_str(),
                    wire_mb, raw_mb, wire_mb > 0.0 ? raw_mb / wire_mb : 0.0,
                    h.FinalAccuracy());
      }
    }
    std::printf("  (fleet '%s', wait-for-all: no drops — sim-second gaps "
                "are pure transfer savings)\n",
                preset.c_str());
  }

  if (!csv.Close().ok()) {
    std::fprintf(stderr, "CSV close failed\n");
    return 1;
  }
  std::printf("\nper-round CSV written to %s\n", csv_path.c_str());
  PrintFootnote();
  return 0;
}
