/// \file bench_table6_fig10_imbalanced.cc
/// \brief Reproduces Table VI + Fig. 10: imbalanced data volumes. Clients
/// are split into groups; each member of group g holds g label-sorted
/// shards (the last group collects the remainder), producing a heavy-tailed
/// size distribution (paper: mean 300, stdev ≈ 171 at 200 clients / 10,000
/// shards). All methods then train on the imbalanced federation.

#include <cstdio>

#include "bench/bench_common.h"

namespace {

using namespace fedadmm;
using namespace fedadmm::bench;

std::vector<double> Series(Scenario* scenario, FederatedAlgorithm* algo,
                           int rounds, uint64_t seed) {
  const History h = RunScenario(scenario, algo, 0.1, rounds, seed);
  std::vector<double> acc;
  for (const RoundRecord& r : h.records()) acc.push_back(r.test_accuracy);
  return acc;
}

}  // namespace

int main() {
  PrintHeader("Table VI + Fig. 10 — imbalanced data volumes");

  const int rounds = RoundBudget(36, 100);
  // The group scheme needs ~m²/4 shards (member of group g holds g shards),
  // so the client count is kept moderate and per-client volume raised at
  // large scale.
  const int clients = LargeScale() ? 100 : 40;
  const int samples_per_client = LargeScale() ? 60 : 24;

  // --- Table VI: partition statistics (plus the paper's exact full-scale
  // numbers, reproduced by the partition test suite).
  std::printf("\nTable VI — imbalanced partition statistics:\n");
  std::printf("%-10s %-8s %-9s %-8s %-8s\n", "task", "clients", "samples",
              "mean", "stdev");
  for (TaskKind task : {TaskKind::kFmnistLike, TaskKind::kCifarLike}) {
    Scenario scenario =
        MakeScenario(task, clients, /*iid=*/false, 10, samples_per_client);
    Rng rng(17);
    // Minimum shards the group scheme requires, plus headroom so the last
    // group genuinely "collects the remainder".
    const int groups = clients / 2;
    const int needed = groups * (groups - 1) + 2;
    const int total_shards =
        std::min(scenario.split->train.size(),
                 std::max(needed + clients, clients * 8));
    scenario.partition = PartitionImbalancedGroups(
                             scenario.split->train.labels(), clients,
                             total_shards, &rng)
                             .ValueOrDie();
    scenario.problem = std::make_unique<NnFederatedProblem>(
        scenario.model, &scenario.split->train, &scenario.split->test,
        scenario.partition, 8);
    const PartitionStats stats =
        ComputePartitionStats(scenario.partition,
                              scenario.split->train.labels());
    std::printf("%-10s %-8d %-9d %-8.1f %-8.1f\n", TaskName(task),
                stats.num_clients, stats.total_samples, stats.mean_size,
                stats.stddev_size);

    // --- Fig. 10: convergence paths on the imbalanced federation.
    std::printf("\nFig. 10 — %s (accuracy per round):\n", TaskName(task));
    std::printf("%-6s %-9s %-9s %-9s %-9s\n", "round", "FedADMM", "FedAvg",
                "FedProx", "SCAFFOLD");
    FedAdmm admm(BenchAdmmOptions());
    FedAvg avg(BenchLocalSpec());
    LocalTrainSpec var = BenchLocalSpec();
    var.variable_epochs = true;
    FedProx prox(var, 0.1f);
    Scaffold scaffold(BenchLocalSpec());

    const auto a = Series(&scenario, &admm, rounds, 101);
    const auto b = Series(&scenario, &avg, rounds, 101);
    const auto c = Series(&scenario, &prox, rounds, 101);
    const auto d = Series(&scenario, &scaffold, rounds, 101);
    const int step = std::max(1, rounds / 10);
    for (int r = 0; r < rounds; r += step) {
      std::printf("%-6d %-9.3f %-9.3f %-9.3f %-9.3f\n", r,
                  a[static_cast<size_t>(r)], b[static_cast<size_t>(r)],
                  c[static_cast<size_t>(r)], d[static_cast<size_t>(r)]);
    }
    std::printf("final  %-9.3f %-9.3f %-9.3f %-9.3f\n\n", a.back(), b.back(),
                c.back(), d.back());
  }

  std::printf(
      "paper reference (Table VI, full scale): FMNIST 200 clients / 60,000\n"
      "samples -> mean 300, stdev 171.03; CIFAR-10 -> mean 250, stdev\n"
      "142.52. Those exact statistics are asserted by the partition tests.\n"
      "paper shape (Fig. 10): FedADMM reaches the highest accuracy on the\n"
      "imbalanced federations, with the largest margin on CIFAR-10.\n");
  PrintFootnote();
  return 0;
}
