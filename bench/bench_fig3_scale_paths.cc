/// \file bench_fig3_scale_paths.cc
/// \brief Reproduces Fig. 3: convergence paths as the client population
/// grows, with hyperparameters tuned once at the smallest scale and then
/// held fixed. The paper's finding: FedADMM's performance gap over the
/// baselines widens with the population (same data volume per round, more
/// dual variables guiding it).
///
/// Prints accuracy series (one column per method) for each population so
/// the curves can be plotted directly.

#include <cstdio>

#include "bench/bench_common.h"

namespace {

using namespace fedadmm;
using namespace fedadmm::bench;

std::vector<double> AccuracySeries(Scenario* scenario,
                                   FederatedAlgorithm* algo, int rounds,
                                   uint64_t seed) {
  const History h = RunScenario(scenario, algo, 0.1, rounds, seed);
  std::vector<double> acc;
  for (const RoundRecord& r : h.records()) acc.push_back(r.test_accuracy);
  return acc;
}

}  // namespace

int main() {
  PrintHeader("Fig. 3 — convergence paths vs system scale (fixed hyperparams)");

  const int rounds = RoundBudget(30, 80);
  const std::vector<int> populations =
      LargeScale() ? std::vector<int>{100, 300, 1000}
                   : std::vector<int>{50, 100, 200};

  for (TaskKind task : {TaskKind::kFmnistLike, TaskKind::kCifarLike}) {
    // Fig. 3 uses FMNIST non-IID and CIFAR IID.
    const bool iid = task == TaskKind::kCifarLike;
    for (int m : populations) {
      Scenario scenario = MakeScenario(task, m, iid, 2);
      std::printf("\n%s, %s, m=%d (accuracy per round)\n", TaskName(task),
                  iid ? "IID" : "non-IID", m);
      std::printf("%-6s %-9s %-9s %-9s %-9s\n", "round", "FedADMM", "FedAvg",
                  "FedProx", "SCAFFOLD");
      FedAdmm admm(BenchAdmmOptions());
      FedAvg avg(BenchLocalSpec());
      LocalTrainSpec var = BenchLocalSpec();
      var.variable_epochs = true;
      FedProx prox(var, 0.1f);
      Scaffold scaffold(BenchLocalSpec());

      const auto a = AccuracySeries(&scenario, &admm, rounds, 21);
      const auto b = AccuracySeries(&scenario, &avg, rounds, 21);
      const auto c = AccuracySeries(&scenario, &prox, rounds, 21);
      const auto d = AccuracySeries(&scenario, &scaffold, rounds, 21);
      const int step = std::max(1, rounds / 10);
      for (int r = 0; r < rounds; r += step) {
        std::printf("%-6d %-9.3f %-9.3f %-9.3f %-9.3f\n", r,
                    a[static_cast<size_t>(r)], b[static_cast<size_t>(r)],
                    c[static_cast<size_t>(r)], d[static_cast<size_t>(r)]);
      }
      std::printf("final  %-9.3f %-9.3f %-9.3f %-9.3f\n", a.back(), b.back(),
                  c.back(), d.back());
    }
  }

  std::printf(
      "\npaper shape: all methods slow down as m grows (same per-round data\n"
      "volume spread thinner), and FedADMM's lead widens with m.\n");
  PrintFootnote();
  return 0;
}
