/// \file bench_table5_rho_sensitivity.cc
/// \brief Reproduces Table V: FedProx's sensitivity to the proximal
/// coefficient ρ vs FedADMM with one fixed ρ. The paper shows FedProx's
/// best ρ changes across datasets and populations (and is non-monotone),
/// while FedADMM with a constant ρ dominates every tested FedProx.

#include <cstdio>

#include "bench/bench_common.h"

namespace {

using namespace fedadmm;
using namespace fedadmm::bench;

int RoundsFor(Scenario* scenario, FederatedAlgorithm* algo, int budget,
              double target, uint64_t seed) {
  const History h = RunScenario(scenario, algo, 0.1, budget, seed, target);
  const int r = h.RoundsToAccuracy(target);
  return r < 0 ? -1 : r;
}

}  // namespace

int main() {
  PrintHeader(
      "Table V — rounds to target: FedADMM (fixed ρ) vs FedProx (ρ sweep)");

  const int budget = RoundBudget(40, 100);
  const std::vector<int> populations =
      LargeScale() ? std::vector<int>{200, 500} : std::vector<int>{100, 200};
  const std::vector<float> prox_rhos = {0.01f, 0.1f, 1.0f};

  for (TaskKind task : {TaskKind::kMnistLike, TaskKind::kFmnistLike}) {
    const double target = TaskTarget(task);
    std::printf("\n%s (target %.0f%%)\n", TaskName(task), target * 100);
    std::printf("%-26s", "method (rho)");
    for (int m : populations) {
      std::printf(" m=%-4d IID  m=%-4d nIID", m, m);
    }
    std::printf("\n");

    // FedADMM row: fixed bench rho.
    std::printf("%-26s", ("FedADMM (" + std::to_string(kBenchRho) + ")")
                             .substr(0, 25)
                             .c_str());
    for (int m : populations) {
      for (bool iid : {true, false}) {
        Scenario scenario = MakeScenario(task, m, iid, 8);
        FedAdmm algo(BenchAdmmOptions());
        const int r = RoundsFor(&scenario, &algo, budget, target, 81);
        std::printf(" %-11s", FormatRounds(r, budget).c_str());
      }
    }
    std::printf("\n");

    // FedProx rows: rho sweep.
    for (float rho : prox_rhos) {
      char name[64];
      std::snprintf(name, sizeof(name), "FedProx (%.2f)", rho);
      std::printf("%-26s", name);
      for (int m : populations) {
        for (bool iid : {true, false}) {
          Scenario scenario = MakeScenario(task, m, iid, 8);
          LocalTrainSpec local = BenchLocalSpec();
          local.variable_epochs = true;
          FedProx algo(local, rho);
          const int r = RoundsFor(&scenario, &algo, budget, target, 81);
          std::printf(" %-11s", FormatRounds(r, budget).c_str());
        }
      }
      std::printf("\n");
    }
  }

  std::printf(
      "\npaper shape: FedProx's performance varies drastically and\n"
      "non-monotonically with ρ (its best ρ differs across datasets and\n"
      "populations), while a single fixed-ρ FedADMM stays consistent.\n");
  PrintFootnote();
  return 0;
}
