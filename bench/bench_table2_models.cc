/// \file bench_table2_models.cc
/// \brief Reproduces Table II of the paper: the experimental setup's model
/// sizes. Builds the two exact CNN architectures, verifies the parameter
/// counts match the published numbers, and reports per-sample CPU training
/// cost (which motivates the scaled bench models used elsewhere).

#include <cstdio>

#include "bench/bench_common.h"
#include "util/stopwatch.h"

namespace {

using namespace fedadmm;

struct Table2Row {
  const char* model_name;
  ModelConfig config;
  int64_t paper_params;
  const char* dataset;
  const char* paper_target;
};

void TimeModel(Model* model, const Shape& input_shape, double* fwd_ms,
               double* fwdbwd_ms) {
  Rng rng(1);
  model->Initialize(&rng);
  Tensor x(input_shape);
  x.FillNormal(&rng);
  std::vector<int> labels;
  for (int64_t i = 0; i < input_shape.dim(0); ++i) {
    labels.push_back(static_cast<int>(i % 10));
  }
  // Warmup.
  model->Predict(x);
  Stopwatch watch;
  const int reps = 3;
  for (int i = 0; i < reps; ++i) model->Predict(x);
  *fwd_ms = watch.ElapsedMillis() / reps;
  watch.Reset();
  for (int i = 0; i < reps; ++i) {
    model->ZeroGrad();
    model->ForwardBackward(x, labels);
  }
  *fwdbwd_ms = watch.ElapsedMillis() / reps;
}

}  // namespace

int main() {
  using namespace fedadmm::bench;
  PrintHeader(
      "Table II — Experimental setup: models, parameter counts, targets");

  const Table2Row rows[] = {
      {"CNN 1", PaperCnn1Config(), 1663370, "MNIST / FMNIST", "97% / 80%"},
      {"CNN 2", PaperCnn2Config(), 1105098, "CIFAR-10", "45%"},
  };

  std::printf("%-8s %-14s %-14s %-8s %-16s %-10s %-12s\n", "model",
              "paper #params", "built #params", "match", "dataset",
              "fwd ms/8", "fwd+bwd ms/8");
  for (const Table2Row& row : rows) {
    auto model = BuildModel(row.config);
    const int64_t built = model->NumParameters();
    double fwd = 0, fwdbwd = 0;
    const Shape input({8, row.config.in_channels, row.config.height,
                       row.config.width});
    TimeModel(model.get(), input, &fwd, &fwdbwd);
    std::printf("%-8s %-14lld %-14lld %-8s %-16s %-10.1f %-12.1f\n",
                row.model_name, static_cast<long long>(row.paper_params),
                static_cast<long long>(built),
                built == row.paper_params ? "EXACT" : "MISMATCH", row.dataset,
                fwd, fwdbwd);
  }

  // The scaled bench model used by the other benches, for context.
  auto bench_model = BuildModel(BenchCnnConfig(1, 12));
  double fwd = 0, fwdbwd = 0;
  TimeModel(bench_model.get(), Shape({8, 1, 12, 12}), &fwd, &fwdbwd);
  std::printf("%-8s %-14s %-14lld %-8s %-16s %-10.1f %-12.1f\n", "bench",
              "(n/a)", static_cast<long long>(bench_model->NumParameters()),
              "-", "synthetic", fwd, fwdbwd);

  PrintFootnote();
  return 0;
}
