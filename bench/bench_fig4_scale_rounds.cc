/// \file bench_fig4_scale_rounds.cc
/// \brief Reproduces Fig. 4: rounds to a prescribed accuracy as the client
/// population grows (the reversed data-distribution settings of Fig. 3),
/// along with FedADMM's reduction over the best baseline at each scale.

#include <cstdio>

#include "bench/bench_common.h"

namespace {

using namespace fedadmm;
using namespace fedadmm::bench;

int RoundsFor(Scenario* scenario, FederatedAlgorithm* algo, int budget,
              double target, uint64_t seed) {
  const History h =
      RunScenario(scenario, algo, 0.1, budget, seed, target);
  const int r = h.RoundsToAccuracy(target);
  return r < 0 ? budget + 1 : r;
}

}  // namespace

int main() {
  PrintHeader("Fig. 4 — rounds to target accuracy vs client population");

  const int budget = RoundBudget(40, 120);
  const std::vector<int> populations =
      LargeScale() ? std::vector<int>{100, 300, 1000}
                   : std::vector<int>{50, 100, 200};

  for (TaskKind task : {TaskKind::kFmnistLike, TaskKind::kCifarLike}) {
    // Reversed settings relative to Fig. 3: FMNIST IID, CIFAR non-IID.
    const bool iid = task == TaskKind::kFmnistLike;
    const double target = TaskTarget(task);
    std::printf("\n%s, %s, target %.0f%%\n", TaskName(task),
                iid ? "IID" : "non-IID", target * 100);
    std::printf("%-8s %-9s %-9s %-9s %-9s %-10s\n", "m", "FedADMM", "FedAvg",
                "FedProx", "SCAFFOLD", "reduction");
    for (int m : populations) {
      Scenario scenario = MakeScenario(task, m, iid, 3);
      FedAdmm admm(BenchAdmmOptions());
      FedAvg avg(BenchLocalSpec());
      LocalTrainSpec var = BenchLocalSpec();
      var.variable_epochs = true;
      FedProx prox(var, 0.1f);
      Scaffold scaffold(BenchLocalSpec());

      const int ra = RoundsFor(&scenario, &admm, budget, target, 31);
      const int rb = RoundsFor(&scenario, &avg, budget, target, 31);
      const int rc = RoundsFor(&scenario, &prox, budget, target, 31);
      const int rd = RoundsFor(&scenario, &scaffold, budget, target, 31);
      const int best_baseline = std::min({rb, rc, rd});
      std::printf("%-8d %-9s %-9s %-9s %-9s %+.0f%%\n", m,
                  FormatRounds(ra > budget ? -1 : ra, budget).c_str(),
                  FormatRounds(rb > budget ? -1 : rb, budget).c_str(),
                  FormatRounds(rc > budget ? -1 : rc, budget).c_str(),
                  FormatRounds(rd > budget ? -1 : rd, budget).c_str(),
                  (1.0 - static_cast<double>(ra) / best_baseline) * 100.0);
    }
  }

  std::printf(
      "\npaper shape: rounds grow with m for every method; FedADMM grows\n"
      "slowest, so its reduction percentage increases with scale.\n");
  PrintFootnote();
  return 0;
}
