/// \file bench_common.h
/// \brief Shared scaffolding for the paper-reproduction benchmarks.
///
/// Every bench binary regenerates one table or figure of the paper's
/// evaluation (Section V) at CPU-bench scale and prints the paper's
/// reference values next to the measured ones. Scale is controlled by
/// FEDADMM_BENCH_SCALE:
///   * "small" (default): minutes-total across all benches,
///   * "large": bigger populations / more rounds, closer to the paper.
/// Individual knobs can be overridden via FEDADMM_BENCH_ROUNDS,
/// FEDADMM_BENCH_SEEDS.
///
/// The synthetic datasets stand in for MNIST/FMNIST/CIFAR-10 (the
/// environment is offline; see DESIGN.md §5). The three stand-ins keep the
/// real datasets' relative difficulty via increasing noise and channels.

#ifndef FEDADMM_BENCH_BENCH_COMMON_H_
#define FEDADMM_BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "core/fedadmm.h"
#include "data/partition.h"
#include "data/synthetic.h"
#include "fl/algorithms/fedavg.h"
#include "fl/algorithms/fedprox.h"
#include "fl/algorithms/fedsgd.h"
#include "fl/algorithms/scaffold.h"
#include "fl/nn_problem.h"
#include "fl/selection.h"
#include "fl/simulation.h"
#include "util/env.h"

namespace fedadmm::bench {

/// Which stand-in dataset a scenario uses.
enum class TaskKind { kMnistLike, kFmnistLike, kCifarLike };

inline const char* TaskName(TaskKind kind) {
  switch (kind) {
    case TaskKind::kMnistLike:
      return "MNIST*";
    case TaskKind::kFmnistLike:
      return "FMNIST*";
    case TaskKind::kCifarLike:
      return "CIFAR-10*";
  }
  return "?";
}

/// True when FEDADMM_BENCH_SCALE=large.
inline bool LargeScale() {
  return GetEnvString("FEDADMM_BENCH_SCALE", "small") == "large";
}

/// A federated scenario: dataset + partition + model, bench-scaled.
struct Scenario {
  TaskKind task = TaskKind::kMnistLike;
  int clients = 100;
  bool iid = false;
  /// Samples per client (controls the per-round compute).
  int samples_per_client = 12;
  uint64_t seed = 1;

  std::unique_ptr<DataSplit> split;
  Partition partition;
  ModelConfig model;
  std::unique_ptr<NnFederatedProblem> problem;
};

/// Noise level of each stand-in (keeps MNIST < FMNIST < CIFAR difficulty;
/// the 3-channel CIFAR stand-in needs proportionally more noise because its
/// prototypes carry 3x the signal pixels).
inline float TaskNoise(TaskKind kind) {
  switch (kind) {
    case TaskKind::kMnistLike:
      return 1.0f;
    case TaskKind::kFmnistLike:
      return 1.3f;
    case TaskKind::kCifarLike:
      return 3.0f;
  }
  return 1.0f;
}

/// Target accuracy per task, calibrated near each task's ceiling the way
/// the paper's targets are (97% / 80% / 45%): the interesting differences
/// between methods appear in the late, drift-dominated phase.
inline double TaskTarget(TaskKind kind) {
  switch (kind) {
    case TaskKind::kMnistLike:
      return 0.95;
    case TaskKind::kFmnistLike:
      return 0.85;
    case TaskKind::kCifarLike:
      return 0.85;
  }
  return 0.5;
}

/// The bench workhorse model: a wide (overparameterized) classifier.
///
/// Substitution note (DESIGN.md §5): the paper's 1.1M-1.7M-parameter CNNs
/// operate deep in the interpolation regime, which is what makes the ADMM
/// local subproblems solvable by a few SGD epochs (inexactness ε of Eq. (6)
/// stays small). At CPU-bench scale a narrow CNN leaves that regime and
/// all the dual-ascent methods degrade; a wide MLP restores it at tractable
/// cost. Set FEDADMM_BENCH_MODEL=cnn to use the scaled two-conv CNN
/// instead; the exact paper CNNs are validated by bench_table2_models.
inline ModelConfig BenchModel(TaskKind task) {
  const bool cnn = GetEnvString("FEDADMM_BENCH_MODEL", "mlp") == "cnn";
  const int channels = task == TaskKind::kCifarLike ? 3 : 1;
  if (cnn) return BenchCnnConfig(channels, 12);
  ModelConfig config;
  config.arch = ModelConfig::Arch::kMlp;
  config.in_channels = channels;
  config.height = 12;
  config.width = 12;
  config.mlp_hidden = 256;
  config.classes = 10;
  return config;
}

/// Builds a ready-to-run scenario.
inline Scenario MakeScenario(TaskKind task, int clients, bool iid,
                             uint64_t seed = 1, int samples_per_client = 12) {
  Scenario s;
  s.task = task;
  s.clients = clients;
  s.iid = iid;
  s.samples_per_client = samples_per_client;
  s.seed = seed;

  const int channels = task == TaskKind::kCifarLike ? 3 : 1;
  const int hw = 12;
  const int per_class = clients * samples_per_client / 10;
  s.split = std::make_unique<DataSplit>(GenerateSynthetic(
      SyntheticBenchSpec(channels, hw, per_class, /*test_per_class=*/30,
                         TaskNoise(task))));
  Rng rng(seed);
  s.partition =
      iid ? PartitionIid(s.split->train.size(), clients, &rng).ValueOrDie()
          : PartitionShards(s.split->train.labels(), clients, 2, &rng)
                .ValueOrDie();
  s.model = BenchModel(task);
  s.problem = std::make_unique<NnFederatedProblem>(
      s.model, &s.split->train, &s.split->test, s.partition,
      /*num_workers=*/8);
  return s;
}

/// The paper's local hyperparameters at bench scale.
inline LocalTrainSpec BenchLocalSpec(int epochs = 10, int batch = 5,
                                     float lr = 0.1f) {
  LocalTrainSpec local;
  local.learning_rate = lr;
  local.batch_size = batch;
  local.max_epochs = epochs;
  return local;
}

/// Bench default ρ for FedADMM, fixed across all scenarios (mirroring the
/// paper's fixed ρ = 0.01; the scaled tasks need a proportionally larger
/// anchor because clients hold far less data).
inline constexpr float kBenchRho = 1.0f;

/// FedADMM with the bench defaults.
inline FedAdmmOptions BenchAdmmOptions(float rho = kBenchRho,
                                       int epochs = 10) {
  FedAdmmOptions options;
  options.local = BenchLocalSpec(epochs);
  options.local.variable_epochs = true;
  options.rho = StepSchedule(rho);
  options.eta = StepSchedule(1.0);
  return options;
}

/// Runs one algorithm on a scenario; returns the history.
inline History RunScenario(Scenario* scenario, FederatedAlgorithm* algo,
                           double fraction, int rounds, uint64_t seed,
                           double target = -1.0) {
  UniformFractionSelector selector(scenario->problem->num_clients(),
                                   fraction);
  SimulationConfig config;
  config.max_rounds = rounds;
  config.seed = seed;
  config.target_accuracy = target;
  config.num_threads = 8;
  Simulation sim(scenario->problem.get(), algo, &selector, config);
  return std::move(sim.Run()).ValueOrDie();
}

/// Bench-wide round budget (env-overridable).
inline int RoundBudget(int small_default, int large_default) {
  const int from_env = static_cast<int>(GetEnvInt("FEDADMM_BENCH_ROUNDS", 0));
  if (from_env > 0) return from_env;
  return LargeScale() ? large_default : small_default;
}

/// Number of seeds to average (paper: 5 runs).
inline int SeedCount() {
  const int from_env = static_cast<int>(GetEnvInt("FEDADMM_BENCH_SEEDS", 0));
  if (from_env > 0) return from_env;
  return LargeScale() ? 3 : 1;
}

/// Formats a rounds-to-target value the way the paper does ("100+" when the
/// target was not reached within the budget).
inline std::string FormatRounds(int rounds, int budget) {
  if (rounds < 0) return std::to_string(budget) + "+";
  return std::to_string(rounds);
}

/// Formats a seconds-to-target value ("--" when the target was not reached).
inline std::string FormatSeconds(double s) {
  if (s < 0.0) return "--";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1f", s);
  return buf;
}

/// Splits a comma-separated codec spec list ("identity,q8,topk10"); empty
/// fields are skipped.
inline std::vector<std::string> ParseCodecList(const std::string& csv) {
  std::vector<std::string> specs;
  std::string current;
  for (char c : csv) {
    if (c == ',') {
      if (!current.empty()) specs.push_back(current);
      current.clear();
    } else {
      current += c;
    }
  }
  if (!current.empty()) specs.push_back(current);
  return specs;
}

/// Builds a bench algorithm by its display name: FedADMM runs with variable
/// epochs (paper §V-A), the baselines with fixed full-epoch work.
inline std::unique_ptr<FederatedAlgorithm> MakeBenchAlgorithm(
    const std::string& name) {
  if (name == "FedADMM") return std::make_unique<FedAdmm>(BenchAdmmOptions());
  if (name == "FedAvg") return std::make_unique<FedAvg>(BenchLocalSpec());
  if (name == "FedProx") {
    return std::make_unique<FedProx>(BenchLocalSpec(), kBenchRho);
  }
  FEDADMM_CHECK_MSG(name == "SCAFFOLD",
                    "MakeBenchAlgorithm: unknown algorithm");
  return std::make_unique<Scaffold>(BenchLocalSpec());
}

/// Prints a section header.
inline void PrintHeader(const std::string& title) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("================================================================\n");
}

/// Prints the standard bench footnote on scale and substitution.
inline void PrintFootnote() {
  std::printf(
      "\n* synthetic stand-ins at CPU-bench scale (see DESIGN.md §5). Shapes\n"
      "  (orderings, trends), not absolute values, are the reproduction\n"
      "  target. FEDADMM_BENCH_SCALE=large increases scale.\n");
}

}  // namespace fedadmm::bench

#endif  // FEDADMM_BENCH_BENCH_COMMON_H_
