/// \file bench_table3_rounds.cc
/// \brief Reproduces Table III: number of communication rounds (and speedup
/// relative to FedSGD) to reach a target accuracy, across datasets,
/// populations and IID/non-IID splits, for all five algorithms.
///
/// Paper reference (rounds to target; 100+ = not reached):
///   MNIST m=100:  IID  FedSGD 297 / FedADMM 10 / FedAvg 19 / FedProx 29 / SCAFFOLD 27
///                 nIID FedSGD 250 / FedADMM 33 / FedAvg 77 / FedProx 100+ / SCAFFOLD 76
///   MNIST m=1000: IID  201/8/61/78/61        nIID 269/13/73/100+/84
///   FMNIST m=1000: IID 390/3/10/14/12        nIID 530/7/33/61/40
///   CIFAR m=1000: IID  186/7/24/32/37        nIID 202/9/50/68/100+

#include <cstdio>

#include "bench/bench_common.h"

namespace {

using namespace fedadmm;
using namespace fedadmm::bench;

struct Setting {
  TaskKind task;
  int clients;
};

struct Results {
  int fedsgd = -1, fedadmm = -1, fedavg = -1, fedprox = -1, scaffold = -1;
};

int MergeRounds(int acc, int run, int budget) {
  const int r = run < 0 ? budget + 1 : run;
  return acc < 0 ? r : (acc + r);
}

}  // namespace

int main() {
  PrintHeader(
      "Table III — communication rounds to target accuracy "
      "(per-task targets; '+' = not reached)");

  const int budget = RoundBudget(40, 120);
  const int seeds = SeedCount();
  const std::vector<Setting> settings = {
      {TaskKind::kMnistLike, 100},
      {TaskKind::kMnistLike, LargeScale() ? 300 : 200},
      {TaskKind::kFmnistLike, LargeScale() ? 300 : 200},
      {TaskKind::kCifarLike, LargeScale() ? 300 : 200},
  };

  std::printf("%-10s %-8s %-6s %-8s %-8s %-8s %-8s %-9s %-10s\n", "task", "m",
              "split", "FedSGD", "FedADMM", "FedAvg", "FedProx", "SCAFFOLD",
              "reduction");
  for (const Setting& setting : settings) {
    for (bool iid : {true, false}) {
      const double target = TaskTarget(setting.task);
      Results totals;
      for (int s = 0; s < seeds; ++s) {
        Scenario scenario =
            MakeScenario(setting.task, setting.clients, iid, 1 + s);
        const uint64_t seed = 11 + static_cast<uint64_t>(s);
        {
          FedSgd algo(0.1f);
          totals.fedsgd = MergeRounds(
              totals.fedsgd,
              RunScenario(&scenario, &algo, 0.1, budget, seed, target)
                  .RoundsToAccuracy(target),
              budget);
        }
        {
          FedAdmm algo(BenchAdmmOptions());
          totals.fedadmm = MergeRounds(
              totals.fedadmm,
              RunScenario(&scenario, &algo, 0.1, budget, seed, target)
                  .RoundsToAccuracy(target),
              budget);
        }
        {
          FedAvg algo(BenchLocalSpec());
          totals.fedavg = MergeRounds(
              totals.fedavg,
              RunScenario(&scenario, &algo, 0.1, budget, seed, target)
                  .RoundsToAccuracy(target),
              budget);
        }
        {
          LocalTrainSpec local = BenchLocalSpec();
          local.variable_epochs = true;
          FedProx algo(local, 0.1f);
          totals.fedprox = MergeRounds(
              totals.fedprox,
              RunScenario(&scenario, &algo, 0.1, budget, seed, target)
                  .RoundsToAccuracy(target),
              budget);
        }
        {
          Scaffold algo(BenchLocalSpec());
          totals.scaffold = MergeRounds(
              totals.scaffold,
              RunScenario(&scenario, &algo, 0.1, budget, seed, target)
                  .RoundsToAccuracy(target),
              budget);
        }
      }
      auto avg = [&](int total) {
        return static_cast<double>(total) / seeds;
      };
      auto fmt = [&](int total, char* buf, size_t n) {
        const double v = avg(total);
        if (v > budget) {
          std::snprintf(buf, n, "%d+", budget);
        } else {
          std::snprintf(buf, n, "%.0f", v);
        }
      };
      char sgd[16], admm[16], favg[16], prox[16], scaf[16];
      fmt(totals.fedsgd, sgd, sizeof(sgd));
      fmt(totals.fedadmm, admm, sizeof(admm));
      fmt(totals.fedavg, favg, sizeof(favg));
      fmt(totals.fedprox, prox, sizeof(prox));
      fmt(totals.scaffold, scaf, sizeof(scaf));
      // Reduction of FedADMM over the best *baseline* (paper's metric).
      const double best_baseline =
          std::min({avg(totals.fedavg), avg(totals.fedprox),
                    avg(totals.scaffold), avg(totals.fedsgd)});
      const double reduction =
          (1.0 - avg(totals.fedadmm) / best_baseline) * 100.0;
      std::printf("%-10s %-8d %-6s %-8s %-8s %-8s %-8s %-9s %+.0f%%\n",
                  TaskName(setting.task), setting.clients,
                  iid ? "IID" : "nIID", sgd, admm, favg, prox, scaf,
                  reduction);
    }
  }

  std::printf(
      "\npaper shape: FedADMM fastest everywhere (47-87%% reduction vs the\n"
      "best baseline), gap largest for non-IID and large m; FedSGD slowest.\n");
  PrintFootnote();
  return 0;
}
