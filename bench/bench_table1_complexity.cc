/// \file bench_table1_complexity.cc
/// \brief Empirical counterpart of Table I: communication-round complexity
/// to reach an ε-stationary solution.
///
/// Table I is theoretical; this bench measures the quantities the theory
/// predicts, on convex federated quadratics where stationarity is exactly
/// computable:
///   * rounds to reach V_t <= ε for FedADMM at several participation
///     levels, testing the O(1/ε · m/S) dependence (halving S should
///     roughly double the rounds);
///   * rounds to reach ‖∇F(θ)‖² <= ε for FedSGD/FedAvg/FedProx/SCAFFOLD
///     and FedADMM under identical budgets, showing the ordering the
///     theory predicts under data heterogeneity (B → ∞ regime: FedProx's
///     S > B² condition is violated, FedADMM's analysis still applies).

#include <cstdio>

#include "bench/bench_common.h"
#include "core/optimality.h"
#include "fl/quadratic_problem.h"
#include "tensor/vec.h"

namespace {

using namespace fedadmm;
using namespace fedadmm::bench;

QuadraticSpec MakeSpec(int clients, double heterogeneity) {
  QuadraticSpec spec;
  spec.num_clients = clients;
  spec.dim = 16;
  spec.heterogeneity = heterogeneity;
  spec.seed = 77;
  return spec;
}

LocalTrainSpec QuadLocal() {
  LocalTrainSpec local;
  local.learning_rate = 0.04f;
  local.batch_size = 0;
  local.max_epochs = 8;
  return local;
}

/// Rounds until the squared gradient of the global objective at θ drops
/// below eps; -1 if not reached.
int RoundsToStationarity(QuadraticProblem* problem, FederatedAlgorithm* algo,
                         double fraction, int budget, double eps,
                         uint64_t seed) {
  UniformFractionSelector selector(problem->num_clients(), fraction);
  SimulationConfig config;
  config.max_rounds = budget;
  config.seed = seed;
  config.num_threads = 8;
  Simulation sim(problem, algo, &selector, config);

  int reached = -1;
  std::vector<float> grad(static_cast<size_t>(problem->dim()));
  std::vector<double> total(static_cast<size_t>(problem->dim()));
  sim.set_observer([&](const RoundRecord& r) {
    if (reached >= 0) return;
    std::fill(total.begin(), total.end(), 0.0);
    for (int i = 0; i < problem->num_clients(); ++i) {
      problem->ClientGradient(i, sim.theta(), grad);
      for (size_t k = 0; k < total.size(); ++k) total[k] += grad[k];
    }
    double norm_sq = 0.0;
    for (double v : total) norm_sq += v * v;
    norm_sq /= problem->num_clients() * problem->num_clients();
    if (norm_sq <= eps) reached = r.round + 1;
  });
  (void)sim.Run();
  return reached;
}

}  // namespace

int main() {
  PrintHeader(
      "Table I (empirical) — rounds to an ε-stationary solution on convex "
      "federated quadratics");

  const int budget = RoundBudget(400, 1200);
  const double eps = 1e-3;

  // Part 1: FedADMM's O(m/S) dependence — fix m, vary S.
  std::printf("\nFedADMM rounds vs participation (theory: rounds ∝ m/S):\n");
  std::printf("%-8s %-8s %-12s %-18s\n", "m", "S", "rounds", "rounds*(S/m)");
  for (double fraction : {1.0, 0.5, 0.25, 0.125}) {
    QuadraticProblem problem(MakeSpec(16, 1.5));
    FedAdmmOptions options;
    options.local = QuadLocal();
    options.rho = StepSchedule(2.0);
    options.eta_active_fraction = true;  // the analyzed step size
    FedAdmm algo(options);
    const int rounds =
        RoundsToStationarity(&problem, &algo, fraction, budget, eps, 3);
    const int s = std::max(1, static_cast<int>(fraction * 16));
    std::printf("%-8d %-8d %-12s %-18.1f\n", 16, s,
                FormatRounds(rounds, budget).c_str(),
                rounds > 0 ? rounds * (static_cast<double>(s) / 16) : -1.0);
  }

  // Part 2: method comparison under heavy heterogeneity (B -> infinity).
  std::printf(
      "\nMethod comparison, m=16, S=4, heterogeneity=3 (rounds to eps):\n");
  std::printf("%-14s %-10s %-44s\n", "method", "rounds",
              "paper Table I complexity");
  struct Row {
    const char* name;
    const char* complexity;
    int rounds;
  };
  std::vector<Row> rows;
  {
    QuadraticProblem problem(MakeSpec(16, 3.0));
    FedSgd algo(0.08f);
    rows.push_back({"FedSGD", "O(1/eps^2 * (m-S)/mS + ...)",
                    RoundsToStationarity(&problem, &algo, 0.25, budget, eps,
                                         5)});
  }
  {
    QuadraticProblem problem(MakeSpec(16, 3.0));
    FedAvg algo(QuadLocal());
    rows.push_back({"FedAvg", "O(1/eps^2 + G/eps^1.5 + B^2/eps)",
                    RoundsToStationarity(&problem, &algo, 0.25, budget, eps,
                                         5)});
  }
  {
    QuadraticProblem problem(MakeSpec(16, 3.0));
    LocalTrainSpec local = QuadLocal();
    local.variable_epochs = true;
    FedProx algo(local, 2.0f);
    rows.push_back({"FedProx", "O(B^2/eps), needs S > B^2",
                    RoundsToStationarity(&problem, &algo, 0.25, budget, eps,
                                         5)});
  }
  {
    QuadraticProblem problem(MakeSpec(16, 3.0));
    Scaffold algo(QuadLocal());
    rows.push_back({"SCAFFOLD", "O(1/eps^2 + (m/S)^{2/3}/eps)",
                    RoundsToStationarity(&problem, &algo, 0.25, budget, eps,
                                         5)});
  }
  {
    QuadraticProblem problem(MakeSpec(16, 3.0));
    FedAdmmOptions options;
    options.local = QuadLocal();
    options.local.variable_epochs = true;
    options.rho = StepSchedule(2.0);
    options.eta_active_fraction = true;
    FedAdmm algo(options);
    rows.push_back({"FedADMM", "O(1/eps * m/S)",
                    RoundsToStationarity(&problem, &algo, 0.25, budget, eps,
                                         5)});
  }
  for (const Row& row : rows) {
    std::printf("%-14s %-10s %-44s\n", row.name,
                FormatRounds(row.rounds, budget).c_str(), row.complexity);
  }

  PrintFootnote();
  return 0;
}
