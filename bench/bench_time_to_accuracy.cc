/// \file bench_time_to_accuracy.cc
/// \brief Time-to-accuracy under system heterogeneity (src/sys engine),
/// with optional uplink compression (src/comm) and an execution-mode axis
/// (fl/server_loop engine: sync / buffered / async).
///
/// The paper reports rounds-to-accuracy, but rounds are free only in a
/// simulator: a deployed round costs the critical path of its slowest
/// admitted client. This bench replays the Section V-A comparison on the
/// virtual clock, in two parts:
///
///   1. **Straggler policies × codecs** (sync): FedADMM / FedAvg / FedProx
///      / SCAFFOLD across fleet presets, deadline policies and uplink
///      codecs. FedADMM tolerates variable local work, so under deadline
///      policies its stragglers contribute partial rounds where the
///      fixed-epoch baselines' late full-epoch updates are discarded.
///   2. **Execution modes** (wait-for-all admission): the same fleet run
///      sync (server waits for the whole wave), buffered (aggregate every
///      K arrivals) and async (aggregate each arrival). Budgets are
///      normalized to the same total client-update count, so any
///      sim-seconds gap is pure scheduling: the event-driven modes never
///      wait for the slowest client. FedADMM runs with η = |S_t|/m (the
///      analyzed choice; mandatory for small aggregation batches).
///
/// The round deadline is derived from *uncompressed* payloads for every
/// codec, so codec rows compare on an identical deadline and any
/// sim-seconds gap is the compression effect itself.
///
/// Output: a summary table on stdout and a deterministic per-round CSV
/// (FEDADMM_BENCH_CSV, default "bench_time_to_accuracy.csv") with context
/// columns preset,policy,codec,mode,algorithm followed by the canonical
/// fl/history_csv round columns (wall_seconds forced to 0 — identical
/// seeds produce identical files).
///
/// Besides stdout + CSV, the run's summary statistics land in the obs perf
/// rail: a BENCH_time_to_accuracy.json document (FEDADMM_BENCH_JSON) with
/// one result row per (preset, policy, codec, mode, algorithm) run —
/// deterministic metrics (rounds/sim-seconds to target, byte ledgers) gate
/// at 0% in tools/bench_diff, accuracies ride along as informational.
///
/// Knobs: FEDADMM_BENCH_ROUNDS, FEDADMM_BENCH_SCALE, FEDADMM_BENCH_CSV,
/// FEDADMM_BENCH_JSON (default "BENCH_time_to_accuracy.json"),
/// FEDADMM_BENCH_DEADLINE_PCTL (percentile of full-work client time used as
/// the round deadline, default 60), FEDADMM_BENCH_CODECS (comma-separated
/// uplink codec specs, default "identity,q8,topk10"; see comm/codec.h),
/// FEDADMM_BENCH_PRESETS (comma-separated fleet presets, default
/// "uniform,lognormal-speed,cellular,cross-device-churn"),
/// FEDADMM_BENCH_MODES (default "sync,buffered,async"),
/// FEDADMM_BENCH_STALENESS ("constant" or "poly:<a>", default "constant").

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "comm/codec.h"
#include "fl/history_csv.h"
#include "obs/bench_recorder.h"
#include "sys/system_model.h"

namespace {

using namespace fedadmm;
using namespace fedadmm::bench;

constexpr double kTargetAccuracy = 0.80;

struct RunResult {
  History history;
  std::string algorithm;
};

// Full-work round time of `client`: download + E epochs of compute + upload.
double FullWorkSeconds(const FleetModel& fleet, int client, int steps_full,
                       int64_t payload_bytes) {
  const ClientTiming t = ComputeClientTiming(
      fleet.profile(client), steps_full, payload_bytes, payload_bytes);
  return t.TotalSeconds();
}

// Deadline that a tunable percentile of the fleet can meet with full work —
// tight enough that the straggler policies actually bite.
double FleetDeadline(const FleetModel& fleet, int steps_full,
                     int64_t payload_bytes) {
  std::vector<double> times;
  times.reserve(static_cast<size_t>(fleet.num_clients()));
  for (int c = 0; c < fleet.num_clients(); ++c) {
    times.push_back(FullWorkSeconds(fleet, c, steps_full, payload_bytes));
  }
  std::sort(times.begin(), times.end());
  const double pctl =
      GetEnvDouble("FEDADMM_BENCH_DEADLINE_PCTL", 60.0) / 100.0;
  const size_t idx = std::min(
      times.size() - 1, static_cast<size_t>(pctl * times.size()));
  return times[idx];
}

History RunWithSystem(Scenario* scenario, FederatedAlgorithm* algo,
                      const SystemModel* model, UpdateCodec* uplink,
                      int rounds, uint64_t seed,
                      ExecutionMode mode = ExecutionMode::kSync,
                      int eval_every = 1, StalenessWeightFn staleness = {},
                      int buffer_size = 0) {
  UniformFractionSelector base(scenario->problem->num_clients(), 0.3);
  AvailabilityFilterSelector selector(&base, &model->fleet());
  SimulationConfig config;
  config.max_rounds = rounds;
  config.seed = seed;
  config.num_threads = 8;
  config.mode = mode;
  config.eval_every = eval_every;
  config.staleness_weight = std::move(staleness);
  config.buffer_size = buffer_size;
  Simulation sim(scenario->problem.get(), algo, &selector, config);
  sim.set_system_model(model);
  if (uplink) sim.set_uplink_codec(uplink);
  return std::move(sim.Run()).ValueOrDie();
}

// One perf-rail row per run, named "preset/policy/codec/mode/algo".
// Unreached targets record null (NaN), mirroring the table's "N+" / "--".
void RecordRun(obs::BenchRecorder* recorder, const std::string& preset,
               const std::string& policy, const std::string& codec,
               const std::string& mode, const std::string& algo,
               const History& h) {
  obs::BenchResult* row = recorder->AddResult(preset + "/" + policy + "/" +
                                              codec + "/" + mode + "/" + algo);
  const int to_rounds = h.RoundsToAccuracy(kTargetAccuracy);
  const double to_sim = h.SimSecondsToAccuracy(kTargetAccuracy);
  row->AddMetric("to_target_rounds",
                 to_rounds < 0 ? std::numeric_limits<double>::quiet_NaN()
                               : static_cast<double>(to_rounds));
  row->AddMetric("to_target_sim_seconds",
                 to_sim < 0.0 ? std::numeric_limits<double>::quiet_NaN()
                              : to_sim);
  row->AddMetric("total_sim_seconds", h.TotalSimSeconds());
  row->AddMetric("dropped_count", static_cast<int64_t>(h.TotalDropped()));
  row->AddMetric("upload_bytes", h.TotalUploadBytes());
  row->AddMetric("final_accuracy", h.FinalAccuracy());
}

void PrintRow(const char* preset, const std::string& policy,
              const std::string& codec, const std::string& mode,
              const std::string& algo, const History& h, int budget) {
  std::printf("%-18s %-22s %-9s %-9s %-9s %7s %9s %8.2f %6d %6.2f %8.3f\n",
              preset, policy.c_str(), codec.c_str(), mode.c_str(),
              algo.c_str(),
              FormatRounds(h.RoundsToAccuracy(kTargetAccuracy), budget)
                  .c_str(),
              FormatSeconds(h.SimSecondsToAccuracy(kTargetAccuracy)).c_str(),
              h.TotalSimSeconds(), h.TotalDropped(),
              static_cast<double>(h.TotalUploadBytes()) / 1.0e6,
              h.FinalAccuracy());
}

}  // namespace

int main() {
  char title[128];
  std::snprintf(title, sizeof(title),
                "Time-to-accuracy under system heterogeneity "
                "(virtual clock; target acc %.2f)",
                kTargetAccuracy);
  PrintHeader(title);

  const int rounds = RoundBudget(12, 40);
  const uint64_t fleet_seed = 3;
  const uint64_t run_seed = 11;
  const std::string preset_csv = GetEnvString(
      "FEDADMM_BENCH_PRESETS",
      "uniform,lognormal-speed,cellular,cross-device-churn");
  const std::vector<std::string> presets = ParseCodecList(preset_csv);
  const std::vector<std::string> policies = {"deadline-drop",
                                             "deadline-admit-partial"};
  const std::string codec_csv =
      GetEnvString("FEDADMM_BENCH_CODECS", "identity,q8,topk10");
  const std::vector<std::string> codecs = ParseCodecList(codec_csv);
  const std::string mode_csv =
      GetEnvString("FEDADMM_BENCH_MODES", "sync,buffered,async");
  const std::vector<std::string> modes = ParseCodecList(mode_csv);
  const StalenessWeightFn staleness =
      MakeStalenessWeight(
          GetEnvString("FEDADMM_BENCH_STALENESS", "constant"))
          .ValueOrDie();

  HistoryCsvWriter csv;
  const std::string csv_path =
      GetEnvString("FEDADMM_BENCH_CSV", "bench_time_to_accuracy.csv");
  if (!csv.Open(csv_path, {"preset", "policy", "codec", "mode", "algorithm"},
                /*deterministic_only=*/true)
           .ok()) {
    std::fprintf(stderr, "cannot write %s\n", csv_path.c_str());
    return 1;
  }

  // The perf rail: every knob that shapes the numbers goes into the
  // context so bench_diff refuses to compare incompatible runs.
  obs::BenchRecorder recorder("time_to_accuracy");
  recorder.AddContext("scale", GetEnvString("FEDADMM_BENCH_SCALE", "small"));
  recorder.AddContext("rounds", static_cast<int64_t>(rounds));
  recorder.AddContext("presets", preset_csv);
  recorder.AddContext("codecs", codec_csv);
  recorder.AddContext("modes", mode_csv);
  recorder.AddContext("staleness",
                      GetEnvString("FEDADMM_BENCH_STALENESS", "constant"));

  std::printf("%-18s %-22s %-9s %-9s %-9s %7s %9s %8s %6s %6s %8s\n",
              "fleet", "policy", "codec", "mode", "algo", "rounds",
              "sim-sec", "tot-sec", "drops", "upMB", "finalacc");

  // One shared scenario: the dataset/model/partition never vary across
  // presets, policies or codecs (runs only read it), so synthesize it once.
  Scenario scenario = MakeScenario(TaskKind::kMnistLike, /*clients=*/30,
                                   /*iid=*/false, /*seed=*/1,
                                   /*samples_per_client=*/12);

  // --- Part 1: straggler policies x codecs (sync execution). -------------
  for (const std::string& preset : presets) {
    const FleetModel fleet =
        FleetModel::FromPreset(preset, scenario.clients, fleet_seed)
            .ValueOrDie();

    // Full local work: E epochs of ceil(n_i / B) minibatch steps.
    const LocalTrainSpec spec = BenchLocalSpec();
    const int steps_full =
        spec.max_epochs *
        ((scenario.samples_per_client + spec.batch_size - 1) /
         spec.batch_size);
    const int64_t payload =
        scenario.problem->dim() * static_cast<int64_t>(sizeof(float));
    const double deadline = FleetDeadline(fleet, steps_full, payload);

    for (const std::string& policy_name : policies) {
      SystemModel model(
          fleet, MakeStragglerPolicy(policy_name, deadline).ValueOrDie());

      for (const std::string& codec_spec : codecs) {
        std::vector<RunResult> results;
        for (const char* algo_name :
             {"FedADMM", "FedAvg", "FedProx", "SCAFFOLD"}) {
          std::unique_ptr<FederatedAlgorithm> algo =
              MakeBenchAlgorithm(algo_name);
          // Fresh codec per run: stateful codecs (ef:*) must not leak
          // residuals across algorithms.
          auto codec = MakeUpdateCodec(codec_spec).ValueOrDie();
          results.push_back({RunWithSystem(&scenario, algo.get(), &model,
                                           codec.get(), rounds, run_seed),
                             algo->name()});
        }

        for (const RunResult& result : results) {
          const History& h = result.history;
          if (!csv.AppendHistory({preset, policy_name, codec_spec, "sync",
                                  result.algorithm},
                                 h)
                   .ok()) {
            std::fprintf(stderr, "CSV write failed\n");
            return 1;
          }
          RecordRun(&recorder, preset, policy_name, codec_spec, "sync",
                    result.algorithm, h);
          PrintRow(preset.c_str(), policy_name, codec_spec, "sync",
                   result.algorithm, h, rounds);
        }
      }
      std::printf("  (deadline %.2fs from raw payloads, fleet '%s', "
                  "policy '%s')\n",
                  deadline, preset.c_str(), policy_name.c_str());
    }
  }

  // --- Part 2: execution modes (wait-for-all admission, no codec). -------
  // Budgets are normalized to the same total client-update count: one sync
  // round aggregates a full wave, one buffered record K arrivals, one
  // async record a single arrival. Eval cadence scales the same way so the
  // accuracy curves have comparable resolution.
  PrintHeader("Execution modes: sync wait-for-all vs buffered/async");
  std::printf("%-18s %-22s %-9s %-9s %-9s %7s %9s %8s %6s %6s %8s\n",
              "fleet", "policy", "codec", "mode", "algo", "rounds",
              "sim-sec", "tot-sec", "drops", "upMB", "finalacc");

  // Part 2 runs longer than part 1: FedADMM under η = |S_t|/m takes ~20
  // sync waves to cross the target, and the whole point is comparing
  // *crossing times* across modes.
  const int mode_budget = RoundBudget(30, 60);
  UniformFractionSelector sizing(scenario.clients, 0.3);
  const int wave = sizing.clients_per_round();
  const int buffer_k = std::max(1, wave / 2);
  const int total_updates = mode_budget * wave;

  for (const char* preset : {"cellular", "cross-device-churn"}) {
    const FleetModel fleet =
        FleetModel::FromPreset(preset, scenario.clients, fleet_seed)
            .ValueOrDie();
    const SystemModel model(
        fleet, MakeStragglerPolicy("wait-for-all", -1.0).ValueOrDie());

    for (const std::string& mode_name : modes) {
      const ExecutionMode mode = ParseExecutionMode(mode_name).ValueOrDie();
      int mode_rounds = mode_budget;
      int eval_every = 1;
      if (mode == ExecutionMode::kBuffered) {
        mode_rounds = (total_updates + buffer_k - 1) / buffer_k;
        eval_every = std::max(1, (wave + buffer_k - 1) / buffer_k);
      } else if (mode == ExecutionMode::kAsync) {
        mode_rounds = total_updates;
        eval_every = wave;
      }

      for (const char* algo_name : {"FedADMM", "FedAvg"}) {
        std::unique_ptr<FederatedAlgorithm> algo;
        if (std::string(algo_name) == "FedADMM") {
          FedAdmmOptions options = BenchAdmmOptions();
          options.eta_active_fraction = true;  // η = |S_t|/m, see header
          algo = std::make_unique<FedAdmm>(options);
        } else {
          algo = MakeBenchAlgorithm(algo_name);
        }
        const History h = RunWithSystem(
            &scenario, algo.get(), &model, /*uplink=*/nullptr, mode_rounds,
            run_seed, mode, eval_every,
            mode == ExecutionMode::kSync ? StalenessWeightFn{} : staleness,
            mode == ExecutionMode::kBuffered ? buffer_k : 0);
        if (!csv.AppendHistory(
                   {preset, "wait-for-all", "identity", mode_name, algo_name},
                   h)
                 .ok()) {
          std::fprintf(stderr, "CSV write failed\n");
          return 1;
        }
        RecordRun(&recorder, preset, "wait-for-all", "identity", mode_name,
                  algo_name, h);
        PrintRow(preset, "wait-for-all", "identity", mode_name, algo_name, h,
                 mode_rounds);
      }
    }
    std::printf("  (fleet '%s': %d-client waves, buffered K=%d, budgets "
                "normalized to %d client updates; availability churn can "
                "shrink a wave below the nominal K)\n",
                preset, wave, buffer_k, total_updates);
  }

  if (!csv.Close().ok()) {
    std::fprintf(stderr, "CSV close failed\n");
    return 1;
  }
  const std::string json_path =
      GetEnvString("FEDADMM_BENCH_JSON", "BENCH_time_to_accuracy.json");
  if (!recorder.WriteFile(json_path).ok()) {
    std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
    return 1;
  }
  std::printf("\nper-round CSV written to %s, perf rail to %s\n",
              csv_path.c_str(), json_path.c_str());
  PrintFootnote();
  return 0;
}
