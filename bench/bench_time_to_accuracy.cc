/// \file bench_time_to_accuracy.cc
/// \brief Time-to-accuracy under system heterogeneity (src/sys engine),
/// with optional uplink compression (src/comm).
///
/// The paper reports rounds-to-accuracy, but rounds are free only in a
/// simulator: a deployed round costs the critical path of its slowest
/// admitted client. This bench replays the Section V-A comparison on the
/// virtual clock: FedADMM / FedAvg / FedProx / SCAFFOLD across fleet
/// presets, straggler policies and uplink codecs, reporting simulated
/// seconds (and client drops) next to rounds. FedADMM tolerates variable
/// local work, so under deadline policies its stragglers contribute partial
/// rounds where the fixed-epoch baselines' late full-epoch updates are
/// discarded; compressed uplinks shrink every client's transfer leg, which
/// matters most on the metered `cellular` preset.
///
/// The round deadline is derived from *uncompressed* payloads for every
/// codec, so codec rows compare on an identical deadline and any
/// sim-seconds gap is the compression effect itself.
///
/// Output: a summary table on stdout and a deterministic per-round CSV
/// (FEDADMM_BENCH_CSV, default "bench_time_to_accuracy.csv") with columns
/// preset,policy,codec,algorithm,round,num_selected,num_dropped,
/// num_admitted_partial,sim_seconds,upload_bytes,upload_bytes_raw,
/// train_loss,test_accuracy. Identical seeds produce identical CSVs —
/// nothing host-clock-dependent is written.
///
/// Knobs: FEDADMM_BENCH_ROUNDS, FEDADMM_BENCH_SCALE, FEDADMM_BENCH_CSV,
/// FEDADMM_BENCH_DEADLINE_PCTL (percentile of full-work client time used as
/// the round deadline, default 60), FEDADMM_BENCH_CODECS (comma-separated
/// uplink codec specs, default "identity,q8,topk10"; see
/// comm/codec.h for the spec grammar).

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "comm/codec.h"
#include "sys/system_model.h"
#include "util/csv.h"

namespace {

using namespace fedadmm;
using namespace fedadmm::bench;

constexpr double kTargetAccuracy = 0.80;

struct RunResult {
  History history;
  std::string algorithm;
};

// Full-work round time of `client`: download + E epochs of compute + upload.
double FullWorkSeconds(const FleetModel& fleet, int client, int steps_full,
                       int64_t payload_bytes) {
  const ClientTiming t = ComputeClientTiming(
      fleet.profile(client), steps_full, payload_bytes, payload_bytes);
  return t.TotalSeconds();
}

// Deadline that a tunable percentile of the fleet can meet with full work —
// tight enough that the straggler policies actually bite.
double FleetDeadline(const FleetModel& fleet, int steps_full,
                     int64_t payload_bytes) {
  std::vector<double> times;
  times.reserve(static_cast<size_t>(fleet.num_clients()));
  for (int c = 0; c < fleet.num_clients(); ++c) {
    times.push_back(FullWorkSeconds(fleet, c, steps_full, payload_bytes));
  }
  std::sort(times.begin(), times.end());
  const double pctl =
      GetEnvDouble("FEDADMM_BENCH_DEADLINE_PCTL", 60.0) / 100.0;
  const size_t idx = std::min(
      times.size() - 1, static_cast<size_t>(pctl * times.size()));
  return times[idx];
}

History RunWithSystem(Scenario* scenario, FederatedAlgorithm* algo,
                      const SystemModel* model, UpdateCodec* uplink,
                      int rounds, uint64_t seed) {
  UniformFractionSelector base(scenario->problem->num_clients(), 0.3);
  AvailabilityFilterSelector selector(&base, &model->fleet());
  SimulationConfig config;
  config.max_rounds = rounds;
  config.seed = seed;
  config.num_threads = 8;
  Simulation sim(scenario->problem.get(), algo, &selector, config);
  sim.set_system_model(model);
  if (uplink) sim.set_uplink_codec(uplink);
  return std::move(sim.Run()).ValueOrDie();
}

}  // namespace

int main() {
  char title[128];
  std::snprintf(title, sizeof(title),
                "Time-to-accuracy under system heterogeneity "
                "(virtual clock; target acc %.2f)",
                kTargetAccuracy);
  PrintHeader(title);

  const int rounds = RoundBudget(12, 40);
  const uint64_t fleet_seed = 3;
  const uint64_t run_seed = 11;
  const std::vector<std::string> presets = {"uniform", "lognormal-speed",
                                            "cellular",
                                            "cross-device-churn"};
  const std::vector<std::string> policies = {"deadline-drop",
                                             "deadline-admit-partial"};
  const std::vector<std::string> codecs = ParseCodecList(
      GetEnvString("FEDADMM_BENCH_CODECS", "identity,q8,topk10"));

  CsvWriter csv;
  const std::string csv_path =
      GetEnvString("FEDADMM_BENCH_CSV", "bench_time_to_accuracy.csv");
  if (!csv.Open(csv_path).ok() ||
      !csv.WriteRow({"preset", "policy", "codec", "algorithm", "round",
                     "num_selected", "num_dropped", "num_admitted_partial",
                     "sim_seconds", "upload_bytes", "upload_bytes_raw",
                     "train_loss", "test_accuracy"})
           .ok()) {
    std::fprintf(stderr, "cannot write %s\n", csv_path.c_str());
    return 1;
  }

  std::printf("%-18s %-22s %-9s %-9s %7s %9s %8s %6s %6s %8s\n", "fleet",
              "policy", "codec", "algo", "rounds", "sim-sec", "tot-sec",
              "drops", "upMB", "finalacc");

  // One shared scenario: the dataset/model/partition never vary across
  // presets, policies or codecs (runs only read it), so synthesize it once.
  Scenario scenario = MakeScenario(TaskKind::kMnistLike, /*clients=*/30,
                                   /*iid=*/false, /*seed=*/1,
                                   /*samples_per_client=*/12);

  for (const std::string& preset : presets) {
    const FleetModel fleet =
        FleetModel::FromPreset(preset, scenario.clients, fleet_seed)
            .ValueOrDie();

    // Full local work: E epochs of ceil(n_i / B) minibatch steps.
    const LocalTrainSpec spec = BenchLocalSpec();
    const int steps_full =
        spec.max_epochs *
        ((scenario.samples_per_client + spec.batch_size - 1) /
         spec.batch_size);
    const int64_t payload =
        scenario.problem->dim() * static_cast<int64_t>(sizeof(float));
    const double deadline = FleetDeadline(fleet, steps_full, payload);

    for (const std::string& policy_name : policies) {
      SystemModel model(
          fleet, MakeStragglerPolicy(policy_name, deadline).ValueOrDie());

      for (const std::string& codec_spec : codecs) {
        std::vector<RunResult> results;
        for (const char* algo_name :
             {"FedADMM", "FedAvg", "FedProx", "SCAFFOLD"}) {
          std::unique_ptr<FederatedAlgorithm> algo =
              MakeBenchAlgorithm(algo_name);
          // Fresh codec per run: stateful codecs (ef:*) must not leak
          // residuals across algorithms.
          auto codec = MakeUpdateCodec(codec_spec).ValueOrDie();
          results.push_back({RunWithSystem(&scenario, algo.get(), &model,
                                           codec.get(), rounds, run_seed),
                             algo->name()});
        }

        for (const RunResult& result : results) {
          const History& h = result.history;
          for (const RoundRecord& r : h.records()) {
            char loss[32], acc[32], sim[32];
            std::snprintf(loss, sizeof(loss), "%.6g", r.train_loss);
            std::snprintf(acc, sizeof(acc), "%.6g", r.test_accuracy);
            std::snprintf(sim, sizeof(sim), "%.6g", r.sim_seconds);
            if (!csv.WriteRow({preset, policy_name, codec_spec,
                               result.algorithm, std::to_string(r.round),
                               std::to_string(r.num_selected),
                               std::to_string(r.num_dropped),
                               std::to_string(r.num_admitted_partial), sim,
                               std::to_string(r.upload_bytes),
                               std::to_string(r.upload_bytes_raw), loss,
                               acc})
                     .ok()) {
              std::fprintf(stderr, "CSV write failed\n");
              return 1;
            }
          }
          std::printf(
              "%-18s %-22s %-9s %-9s %7s %9s %8.2f %6d %6.2f %8.3f\n",
              preset.c_str(), policy_name.c_str(), codec_spec.c_str(),
              result.algorithm.c_str(),
              FormatRounds(h.RoundsToAccuracy(kTargetAccuracy), rounds)
                  .c_str(),
              FormatSeconds(h.SimSecondsToAccuracy(kTargetAccuracy))
                  .c_str(),
              h.TotalSimSeconds(), h.TotalDropped(),
              static_cast<double>(h.TotalUploadBytes()) / 1.0e6,
              h.FinalAccuracy());
        }
      }
      std::printf("  (deadline %.2fs from raw payloads, fleet '%s', "
                  "policy '%s')\n",
                  deadline, preset.c_str(), policy_name.c_str());
    }
  }

  if (!csv.Close().ok()) {
    std::fprintf(stderr, "CSV close failed\n");
    return 1;
  }
  std::printf("\nper-round CSV written to %s\n", csv_path.c_str());
  PrintFootnote();
  return 0;
}
