/// \file bench_fig6_server_stepsize.cc
/// \brief Reproduces Fig. 6: effect of the server gathering step size η on
/// FedADMM, in IID and non-IID settings, plus the mid-run step-size
/// decrease experiment (η lowered after a switch round improves late-stage
/// accuracy).

#include <cstdio>

#include "bench/bench_common.h"

namespace {

using namespace fedadmm;
using namespace fedadmm::bench;

std::vector<double> Series(Scenario* scenario, const StepSchedule& eta,
                           int rounds, uint64_t seed) {
  FedAdmmOptions options = BenchAdmmOptions();
  options.eta = eta;
  FedAdmm algo(options);
  const History h = RunScenario(scenario, &algo, 0.1, rounds, seed);
  std::vector<double> acc;
  for (const RoundRecord& r : h.records()) acc.push_back(r.test_accuracy);
  return acc;
}

}  // namespace

int main() {
  PrintHeader("Fig. 6 — FedADMM under different server step sizes η");

  const int rounds = RoundBudget(36, 100);
  const int switch_round = rounds * 3 / 5;  // paper switches at round 60/100
  const int clients = 100;

  for (bool iid : {true, false}) {
    Scenario scenario = MakeScenario(TaskKind::kFmnistLike, clients, iid, 5);
    std::printf("\n%s (accuracy per round)\n", iid ? "IID" : "non-IID");
    const std::string decayed_label =
        "1.0->0.5@" + std::to_string(switch_round);
    std::printf("%-6s %-9s %-9s %-9s %-14s\n", "round", "eta=0.5", "eta=1.0",
                "eta=1.5", decayed_label.c_str());

    const auto a = Series(&scenario, StepSchedule(0.5), rounds, 51);
    const auto b = Series(&scenario, StepSchedule(1.0), rounds, 51);
    const auto c = Series(&scenario, StepSchedule(1.5), rounds, 51);
    StepSchedule decayed(1.0);
    decayed.AddSwitch(switch_round, 0.5);
    const auto d = Series(&scenario, decayed, rounds, 51);

    const int step = std::max(1, rounds / 12);
    for (int r = 0; r < rounds; r += step) {
      std::printf("%-6d %-9.3f %-9.3f %-9.3f %-14.3f\n", r,
                  a[static_cast<size_t>(r)], b[static_cast<size_t>(r)],
                  c[static_cast<size_t>(r)], d[static_cast<size_t>(r)]);
    }
    std::printf("final  %-9.3f %-9.3f %-9.3f %-14.3f\n", a.back(), b.back(),
                c.back(), d.back());
  }

  std::printf(
      "\npaper shape: under IID all η behave similarly (η=0.5 slightly\n"
      "slower at the start); under non-IID η=1.5 stalls/oscillates while\n"
      "η=1.0 is consistent, and decreasing η mid-run improves the tail.\n");
  PrintFootnote();
  return 0;
}
