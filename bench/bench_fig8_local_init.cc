/// \file bench_fig8_local_init.cc
/// \brief Reproduces Fig. 8: local training initialization strategies.
/// Strategy I warm-starts local SGD from the stored client model w_i;
/// strategy II restarts from the downloaded global model θ. The paper finds
/// warm start (I) superior across server step sizes.

#include <cstdio>

#include "bench/bench_common.h"

namespace {

using namespace fedadmm;
using namespace fedadmm::bench;

std::vector<double> Series(Scenario* scenario,
                           FedAdmmOptions::LocalInit init, double eta,
                           int rounds, uint64_t seed) {
  FedAdmmOptions options = BenchAdmmOptions();
  options.init = init;
  options.eta = StepSchedule(eta);
  FedAdmm algo(options);
  const History h = RunScenario(scenario, &algo, 0.1, rounds, seed);
  std::vector<double> acc;
  for (const RoundRecord& r : h.records()) acc.push_back(r.test_accuracy);
  return acc;
}

}  // namespace

int main() {
  PrintHeader(
      "Fig. 8 — local initialization: I = warm start from w_i, II = restart "
      "from θ");

  const int rounds = RoundBudget(36, 100);

  for (double eta : {0.5, 1.0}) {
    Scenario scenario =
        MakeScenario(TaskKind::kFmnistLike, 100, /*iid=*/false, 7);
    std::printf("\nη = %.1f, non-IID (accuracy per round)\n", eta);
    std::printf("%-6s %-14s %-14s\n", "round", "I (warm w_i)",
                "II (global θ)");
    const auto warm = Series(
        &scenario, FedAdmmOptions::LocalInit::kClientModel, eta, rounds, 71);
    const auto cold = Series(
        &scenario, FedAdmmOptions::LocalInit::kGlobalModel, eta, rounds, 71);
    const int step = std::max(1, rounds / 12);
    for (int r = 0; r < rounds; r += step) {
      std::printf("%-6d %-14.3f %-14.3f\n", r, warm[static_cast<size_t>(r)],
                  cold[static_cast<size_t>(r)]);
    }
    std::printf("final  %-14.3f %-14.3f\n", warm.back(), cold.back());
  }

  std::printf(
      "\npaper shape: warm-starting from the stored client model (I) yields\n"
      "superior accuracy trajectories across server step sizes.\n");
  PrintFootnote();
  return 0;
}
