// bench_diff: the CI regression gate over the BENCH_*.json perf rail.
//
// Usage:
//   bench_diff --baseline BENCH_kernels.json --fresh /tmp/BENCH_kernels.json
//              [--tolerance-pct 25] [--deterministic-tolerance-pct 0]
//              [--allow-context-drift]
//
// Exit code 0 when every gated metric is within tolerance, 1 on regression,
// 2 on usage/IO errors. All semantics live in obs/bench_compare.h so they
// are unit-tested; this binary only parses flags and prints the report.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "obs/bench_compare.h"

namespace {

void PrintUsage() {
  std::fprintf(
      stderr,
      "usage: bench_diff --baseline <committed.json> --fresh <new.json>\n"
      "                  [--tolerance-pct <pct, default 25>]\n"
      "                  [--deterministic-tolerance-pct <pct, default 0>]\n"
      "                  [--allow-context-drift]\n");
}

bool ParseDouble(const char* text, double* out) {
  char* end = nullptr;
  const double value = std::strtod(text, &end);
  if (end == text || *end != '\0') return false;
  *out = value;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::string baseline_path;
  std::string fresh_path;
  fedadmm::obs::BenchCompareOptions options;

  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    auto next = [&]() -> const char* {
      return (i + 1 < argc) ? argv[++i] : nullptr;
    };
    if (std::strcmp(arg, "--baseline") == 0) {
      const char* value = next();
      if (value == nullptr) {
        PrintUsage();
        return 2;
      }
      baseline_path = value;
    } else if (std::strcmp(arg, "--fresh") == 0) {
      const char* value = next();
      if (value == nullptr) {
        PrintUsage();
        return 2;
      }
      fresh_path = value;
    } else if (std::strcmp(arg, "--tolerance-pct") == 0) {
      const char* value = next();
      if (value == nullptr || !ParseDouble(value, &options.tolerance_pct)) {
        PrintUsage();
        return 2;
      }
    } else if (std::strcmp(arg, "--deterministic-tolerance-pct") == 0) {
      const char* value = next();
      if (value == nullptr ||
          !ParseDouble(value, &options.deterministic_tolerance_pct)) {
        PrintUsage();
        return 2;
      }
    } else if (std::strcmp(arg, "--allow-context-drift") == 0) {
      options.require_context_match = false;
    } else if (std::strcmp(arg, "--help") == 0 ||
               std::strcmp(arg, "-h") == 0) {
      PrintUsage();
      return 0;
    } else {
      std::fprintf(stderr, "bench_diff: unknown flag '%s'\n", arg);
      PrintUsage();
      return 2;
    }
  }

  if (baseline_path.empty() || fresh_path.empty()) {
    PrintUsage();
    return 2;
  }

  auto result =
      fedadmm::obs::CompareBenchFiles(baseline_path, fresh_path, options);
  if (!result.ok()) {
    std::fprintf(stderr, "bench_diff: %s\n",
                 result.status().message().c_str());
    return 2;
  }

  const fedadmm::obs::BenchCompareReport& report = result.ValueOrDie();
  std::printf("bench_diff: %s vs %s — %d metrics compared, %d gated\n",
              baseline_path.c_str(), fresh_path.c_str(),
              report.metrics_compared, report.metrics_gated);
  for (const std::string& note : report.notes) {
    std::printf("  note: %s\n", note.c_str());
  }
  for (const std::string& failure : report.failures) {
    std::printf("  FAIL: %s\n", failure.c_str());
  }
  if (!report.ok) {
    std::printf("bench_diff: FAILED (%zu regression%s)\n",
                report.failures.size(),
                report.failures.size() == 1 ? "" : "s");
    return 1;
  }
  std::printf("bench_diff: OK\n");
  return 0;
}
